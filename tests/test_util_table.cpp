#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"

namespace u = nestwx::util;

TEST(Table, RequiresNonEmptyHeader) {
  EXPECT_THROW(u::Table({}), u::PreconditionError);
}

TEST(Table, RejectsArityMismatch) {
  u::Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), u::PreconditionError);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), u::PreconditionError);
}

TEST(Table, PrintAlignsColumnsAndIncludesTitle) {
  u::Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "22"});
  std::ostringstream os;
  t.print(os, "demo");
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(u::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(u::Table::num(2.0, 0), "2");
  EXPECT_EQ(u::Table::num(-0.5, 1), "-0.5");
}

TEST(Table, CsvRoundTripWithEscapes) {
  u::Table t({"k", "v"});
  t.add_row({"plain", "1"});
  t.add_row({"with,comma", "quote\"inside"});
  const std::string path = ::testing::TempDir() + "nestwx_table_test.csv";
  t.write_csv(path);
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string line;
  std::getline(f, line);
  EXPECT_EQ(line, "k,v");
  std::getline(f, line);
  EXPECT_EQ(line, "plain,1");
  std::getline(f, line);
  EXPECT_EQ(line, "\"with,comma\",\"quote\"\"inside\"");
  std::remove(path.c_str());
}

TEST(Table, BenchCsvSkippedWithoutEnv) {
  unsetenv("NESTWX_BENCH_OUT");
  u::Table t({"a"});
  t.add_row({"1"});
  EXPECT_FALSE(t.write_bench_csv("nope"));
}

TEST(Table, BenchCsvWrittenWithEnv) {
  const std::string dir = ::testing::TempDir() + "nestwx_bench_out";
  setenv("NESTWX_BENCH_OUT", dir.c_str(), 1);
  u::Table t({"a"});
  t.add_row({"1"});
  EXPECT_TRUE(t.write_bench_csv("yes"));
  std::ifstream f(dir + "/yes.csv");
  EXPECT_TRUE(f.good());
  unsetenv("NESTWX_BENCH_OUT");
}

TEST(Table, RowCountTracksAdds) {
  u::Table t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "util/error.hpp"

namespace u = nestwx::util;
using nestwx::util::PreconditionError;

TEST(ThreadPool, RejectsBadConfig) {
  EXPECT_THROW(u::ThreadPool(0), PreconditionError);
  EXPECT_THROW(u::ThreadPool(2, 0), PreconditionError);
}

TEST(ThreadPool, RunsEveryTask) {
  u::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&count] { ++count; });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.executed(), 100u);
}

TEST(ThreadPool, ParallelForFillsEverySlot) {
  u::ThreadPool pool(4);
  std::vector<int> out(257, -1);
  u::parallel_for(pool, 257, [&out](int i) { out[i] = i * i; });
  for (int i = 0; i < 257; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, ParallelForResultsIndependentOfThreadCount) {
  // The contract backing the campaign's determinism claim: indexed slots
  // make the outcome a function of the input, not the schedule.
  auto run = [](int threads) {
    u::ThreadPool pool(threads);
    std::vector<double> out(64);
    u::parallel_for(pool, 64, [&out](int i) { out[i] = 1.0 / (i + 1); });
    return out;
  };
  EXPECT_EQ(run(1), run(7));
}

TEST(ThreadPool, WorkIsSharedAcrossThreads) {
  // With many slow-ish tasks and several workers, more than one thread
  // must end up executing (stealing keeps everyone busy).
  u::ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> seen;
  u::parallel_for(pool, 64, [&](int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    std::lock_guard lock(mu);
    seen.insert(std::this_thread::get_id());
  });
  EXPECT_GT(seen.size(), 1u);
}

TEST(ThreadPool, NestedSubmissionFromWorkers) {
  // Workers may enqueue follow-up tasks (exempt from the queue bound);
  // every generation must still run.
  u::ThreadPool pool(3, 8);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    pool.submit([&pool, &count] {
      ++count;
      for (int j = 0; j < 4; ++j)
        pool.submit([&count] { ++count; });
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 8 + 8 * 4);
}

TEST(ThreadPool, NestedParallelForFromSingleWorkerDoesNotDeadlock) {
  // Regression: parallel_for called from one of the pool's own workers
  // used to park on the completion latch while the iterations sat in the
  // caller's own deque — a guaranteed deadlock on a one-worker pool. The
  // help-running path must drain them inline.
  u::ThreadPool pool(1);
  std::vector<int> out(16, -1);
  pool.submit([&pool, &out] {
    u::parallel_for(pool, 16, [&out](int i) { out[i] = i; });
  });
  pool.wait_idle();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(out[i], i);
}

TEST(ThreadPool, NestedParallelForTwoLevels) {
  // The sibling-then-bands shape: an outer parallel_for whose iterations
  // each fan out an inner parallel_for on the same pool. Every inner
  // iteration must run exactly once at any pool width.
  for (const int threads : {1, 2, 4}) {
    u::ThreadPool pool(threads);
    std::vector<std::vector<int>> out(6, std::vector<int>(9, -1));
    u::parallel_for(pool, 6, [&pool, &out](int k) {
      u::parallel_for(pool, 9, [&out, k](int b) { out[k][b] = k * 100 + b; });
    });
    for (int k = 0; k < 6; ++k)
      for (int b = 0; b < 9; ++b) EXPECT_EQ(out[k][b], k * 100 + b);
  }
}

TEST(ThreadPool, NestedParallelForPropagatesInnerError) {
  u::ThreadPool pool(2);
  std::atomic<bool> caught{false};
  u::parallel_for(pool, 4, [&pool, &caught](int) {
    try {
      u::parallel_for(pool, 4, [](int i) {
        if (i == 2) throw PreconditionError("inner");
      });
    } catch (const PreconditionError&) {
      caught = true;
    }
  });
  EXPECT_TRUE(caught.load());
  // The pool stays healthy for subsequent work.
  std::atomic<int> count{0};
  u::parallel_for(pool, 8, [&count](int) { ++count; });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPool, HelpRunOneOffWorkerIsANoOp) {
  u::ThreadPool pool(2);
  EXPECT_FALSE(pool.on_worker_thread());
  EXPECT_FALSE(pool.help_run_one());  // external threads never claim
  std::atomic<bool> on_worker{false};
  pool.submit([&pool, &on_worker] { on_worker = pool.on_worker_thread(); });
  pool.wait_idle();
  EXPECT_TRUE(on_worker.load());
}

TEST(ThreadPool, ResolveBandsClampsToPoolAndLimit) {
  u::ThreadPool pool(4);
  EXPECT_EQ(u::resolve_bands(nullptr, 0, 100), 1);   // no pool: serial
  EXPECT_EQ(u::resolve_bands(&pool, 0, 100), 4);     // default: pool width
  EXPECT_EQ(u::resolve_bands(&pool, 2, 100), 2);     // explicit request
  EXPECT_EQ(u::resolve_bands(&pool, 99, 3), 3);      // clamped to limit
  EXPECT_EQ(u::resolve_bands(&pool, -5, 100), 4);    // <=0 means pool width
  EXPECT_EQ(u::resolve_bands(&pool, 0, 0), 1);       // empty range: one band
}

TEST(ThreadPool, BoundedQueueBlocksAndDrains) {
  // A tiny bound with a slow consumer: submit blocks rather than growing
  // the queue, and everything still completes.
  u::ThreadPool pool(1, 2);
  std::atomic<int> count{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&count] {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      ++count;
    });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, CancelDropsQueuedTasks) {
  u::ThreadPool pool(1);
  std::atomic<int> count{0};
  std::atomic<bool> release{false};
  // First task blocks the single worker while we pile up queued tasks.
  pool.submit([&release] {
    while (!release) std::this_thread::yield();
  });
  for (int i = 0; i < 50; ++i)
    pool.submit([&count] { ++count; });
  pool.cancel();
  release = true;
  pool.wait_idle();
  EXPECT_LT(count.load(), 50);
  EXPECT_FALSE(pool.submit([] {}));  // cancelled pool drops submissions
  pool.resume();
  EXPECT_TRUE(pool.submit([&count] { ++count; }));
  pool.wait_idle();
}

TEST(ThreadPool, ParallelForSurvivesCancel) {
  // Iterations dropped by cancel() still release the latch: the call
  // returns instead of hanging.
  u::ThreadPool pool(1);
  std::atomic<bool> release{false};
  pool.submit([&release] {
    while (!release) std::this_thread::yield();
  });
  std::thread canceller([&pool, &release] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    pool.cancel();
    release = true;
  });
  std::atomic<int> ran{0};
  u::parallel_for(pool, 64, [&ran](int) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    ++ran;
  });
  canceller.join();
  EXPECT_LE(ran.load(), 64);
  pool.resume();
}

TEST(ThreadPool, WaitIdleRethrowsFirstTaskError) {
  u::ThreadPool pool(2);
  pool.submit([] { throw PreconditionError("boom"); });
  EXPECT_THROW(pool.wait_idle(), PreconditionError);
  // The error is cleared once delivered.
  pool.submit([] {});
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(ThreadPool, ParallelForPropagatesIterationError) {
  u::ThreadPool pool(4);
  EXPECT_THROW(u::parallel_for(pool, 32,
                               [](int i) {
                                 if (i == 13)
                                   throw PreconditionError("unlucky");
                               }),
               PreconditionError);
  // The pool itself stays healthy afterwards.
  std::atomic<int> count{0};
  u::parallel_for(pool, 8, [&count](int) { ++count; });
  EXPECT_EQ(count.load(), 8);
}

TEST(TaskGroup, ForkJoinWithWorkInBetween) {
  // The compute/exchange-overlap shape: submit, compute on the caller,
  // wait. The group's wait() must see every submitted task complete.
  u::ThreadPool pool(2);
  std::atomic<int> done{0};
  u::TaskGroup group(pool);
  for (int i = 0; i < 16; ++i)
    group.submit([&done] { ++done; });
  int local = 0;  // the "parent interior integration" stand-in
  for (int i = 0; i < 1000; ++i) local += i;
  group.wait();
  EXPECT_EQ(done.load(), 16);
  EXPECT_EQ(local, 499500);
}

TEST(TaskGroup, WaitOnlyBlocksOnOwnTasks) {
  // A slow unrelated task on the shared pool must not delay the group:
  // this is the reason TaskGroup exists instead of wait_idle().
  u::ThreadPool pool(2);
  std::atomic<bool> release{false};
  std::atomic<bool> slow_done{false};
  pool.submit([&] {
    while (!release) std::this_thread::yield();
    slow_done = true;
  });
  u::TaskGroup group(pool);
  std::atomic<int> done{0};
  for (int i = 0; i < 8; ++i)
    group.submit([&done] { ++done; });
  group.wait();  // returns while the unrelated task is still spinning
  EXPECT_EQ(done.load(), 8);
  EXPECT_FALSE(slow_done.load());
  release = true;
  pool.wait_idle();
  EXPECT_TRUE(slow_done.load());
}

TEST(TaskGroup, WaitRethrowsFirstErrorAndIsReusable) {
  u::ThreadPool pool(2);
  u::TaskGroup group(pool);
  group.submit([] { throw PreconditionError("stage failed"); });
  EXPECT_THROW(group.wait(), PreconditionError);
  // Cleared after delivery; the group (and pool) remain usable.
  std::atomic<int> done{0};
  group.submit([&done] { ++done; });
  EXPECT_NO_THROW(group.wait());
  EXPECT_EQ(done.load(), 1);
  // The group's exception never leaks into the pool's wait_idle path.
  EXPECT_NO_THROW(pool.wait_idle());
}

TEST(TaskGroup, SurvivesPoolCancelDroppingTasks) {
  // Tasks dropped by cancel() are destroyed without running; the RAII
  // ticket must still release the group's latch or wait() hangs.
  u::ThreadPool pool(1);
  std::atomic<bool> release{false};
  pool.submit([&release] {
    while (!release) std::this_thread::yield();
  });
  u::TaskGroup group(pool);
  std::atomic<int> ran{0};
  for (int i = 0; i < 32; ++i)
    group.submit([&ran] { ++ran; });
  pool.cancel();
  release = true;
  group.wait();  // must return even though most tasks were dropped
  EXPECT_LE(ran.load(), 32);
  pool.resume();
}

TEST(TaskGroup, DestructorDrainsOutstandingTasks) {
  u::ThreadPool pool(2);
  std::atomic<int> done{0};
  {
    u::TaskGroup group(pool);
    for (int i = 0; i < 8; ++i)
      group.submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ++done;
      });
    // No wait(): the destructor must block until all 8 ran.
  }
  EXPECT_EQ(done.load(), 8);
}

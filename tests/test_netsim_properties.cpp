/// Property tests of the phase simulator: monotonicity in message size,
/// contention, and distance; conservation of idle ranks; determinism.

#include <gtest/gtest.h>

#include <vector>

#include "netsim/phase.hpp"
#include "procgrid/grid2d.hpp"
#include "util/rng.hpp"
#include "workload/machines.hpp"

namespace n = nestwx::netsim;
namespace c = nestwx::core;

namespace {

nestwx::topo::MachineParams machine() {
  auto m = nestwx::workload::bluegene_l(128);
  return m;
}

c::Mapping mapping(const nestwx::topo::MachineParams& m) {
  const nestwx::procgrid::Grid2D grid =
      nestwx::procgrid::choose_grid(m.total_ranks(), 100, 100);
  return c::make_mapping(m, grid, c::MapScheme::xyzt);
}

std::vector<n::Message> random_messages(const c::Mapping& map, int count,
                                        std::uint64_t seed) {
  nestwx::util::Rng rng(seed);
  std::vector<n::Message> msgs;
  for (int i = 0; i < count; ++i) {
    const int a = static_cast<int>(rng.uniform_int(0, map.nranks() - 1));
    int b = static_cast<int>(rng.uniform_int(0, map.nranks() - 1));
    if (b == a) b = (a + 1) % map.nranks();
    msgs.push_back({a, b, rng.uniform(1e3, 1e6)});
  }
  return msgs;
}

}  // namespace

class PhaseProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PhaseProperty, DurationMonotoneInMessageSize) {
  const auto m = machine();
  const n::PhaseSimulator sim(m);
  const auto map = mapping(m);
  auto msgs = random_messages(map, 40, GetParam());
  const auto base = sim.run(map, msgs);
  for (auto& msg : msgs) msg.bytes *= 2.0;
  const auto doubled = sim.run(map, msgs);
  EXPECT_GE(doubled.duration, base.duration);
  EXPECT_GE(doubled.total_wait, base.total_wait * 0.999);
}

TEST_P(PhaseProperty, AddingMessagesNeverSpeedsUp) {
  const auto m = machine();
  const n::PhaseSimulator sim(m);
  const auto map = mapping(m);
  const auto msgs = random_messages(map, 40, GetParam());
  const auto fewer =
      std::vector<n::Message>(msgs.begin(), msgs.begin() + 20);
  const auto small = sim.run(map, fewer);
  const auto big = sim.run(map, msgs);
  EXPECT_GE(big.duration, small.duration * 0.999);
}

TEST_P(PhaseProperty, Deterministic) {
  const auto m = machine();
  const n::PhaseSimulator sim(m);
  const auto map = mapping(m);
  const auto msgs = random_messages(map, 60, GetParam());
  const auto a = sim.run(map, msgs);
  const auto b = sim.run(map, msgs);
  EXPECT_EQ(a.duration, b.duration);
  EXPECT_EQ(a.total_wait, b.total_wait);
  EXPECT_EQ(a.max_link_flows, b.max_link_flows);
  for (int r = 0; r < map.nranks(); ++r)
    EXPECT_EQ(a.finish[r], b.finish[r]);
}

TEST_P(PhaseProperty, FinishNeverBeforeReady) {
  const auto m = machine();
  const n::PhaseSimulator sim(m);
  const auto map = mapping(m);
  const auto msgs = random_messages(map, 50, GetParam());
  nestwx::util::Rng rng(GetParam() + 1);
  std::vector<double> ready(static_cast<std::size_t>(map.nranks()));
  for (auto& r : ready) r = rng.uniform(0.0, 0.1);
  const auto stats = sim.run(map, msgs, ready);
  for (int r = 0; r < map.nranks(); ++r) {
    EXPECT_GE(stats.finish[r], ready[r]);
    EXPECT_GE(stats.wait[r], 0.0);
  }
}

TEST_P(PhaseProperty, WaitIsBoundedByDurationWindow) {
  const auto m = machine();
  const n::PhaseSimulator sim(m);
  const auto map = mapping(m);
  const auto msgs = random_messages(map, 50, GetParam());
  const auto stats = sim.run(map, msgs);
  for (int r = 0; r < map.nranks(); ++r)
    EXPECT_LE(stats.wait[r], stats.duration + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PhaseProperty,
                         ::testing::Values(11ull, 22ull, 33ull, 44ull));

TEST(PhaseContention, CapLimitsSlowdown) {
  auto m = machine();
  m.contention_cap = 2.0;
  m.software_latency = 0.0;
  m.hop_latency = 0.0;
  m.pack_bandwidth = 1e18;
  const n::PhaseSimulator sim(m);
  const auto map = mapping(m);
  // Many messages converging on rank 0's node: the factor must cap at 2.
  std::vector<n::Message> msgs;
  for (int s = 1; s <= 20; ++s) msgs.push_back({s, 0, 1e6});
  const auto stats = sim.run(map, msgs);
  // The slowest message cannot exceed cap x (serial transfer time).
  EXPECT_LE(stats.duration, 2.0 * 1e6 / m.link_bandwidth * 1.001);
}

TEST(PhaseContention, ExponentZeroMeansNoContention) {
  auto m = machine();
  m.contention_exponent = 0.0;
  const n::PhaseSimulator sim(m);
  const auto map = mapping(m);
  const std::vector<n::Message> shared{{0, 2, 1e6}, {1, 2, 1e6}};
  const auto stats = sim.run(map, shared);
  // Both messages see full bandwidth; duration equals the longer solo
  // transit.
  const auto solo = sim.run(map, std::vector<n::Message>{{0, 2, 1e6}});
  EXPECT_NEAR(stats.duration, solo.duration, 1e-9);
}

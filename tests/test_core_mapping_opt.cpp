#include "core/mapping_opt.hpp"

#include <gtest/gtest.h>

#include "core/allocation.hpp"
#include "procgrid/grid2d.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workload/machines.hpp"

namespace c = nestwx::core;
namespace p = nestwx::procgrid;

namespace {

nestwx::topo::MachineParams odd_machine() {
  nestwx::topo::MachineParams m;
  m.name = "odd";
  m.torus_x = 5;
  m.torus_y = 7;
  m.torus_z = 3;
  m.cores_per_node = 2;
  m.mode = nestwx::topo::NodeMode::virtual_node;  // 210 ranks
  return m;
}

c::CommPattern grid_halo(const p::Grid2D& grid) {
  c::CommPattern pat;
  for (int y = 0; y < grid.py(); ++y)
    for (int x = 0; x < grid.px(); ++x) {
      if (x + 1 < grid.px()) pat.add(grid.rank(x, y), grid.rank(x + 1, y));
      if (y + 1 < grid.py()) pat.add(grid.rank(x, y), grid.rank(x, y + 1));
    }
  return pat;
}

}  // namespace

TEST(MappingOpt, HopCostMatchesAverageHopsTimesWeight) {
  const auto m = odd_machine();
  const p::Grid2D grid(14, 15);
  const auto map = c::make_mapping(m, grid, c::MapScheme::xyzt);
  const auto pat = grid_halo(grid);
  const double cost = c::hop_cost(map, pat);
  const double avg = c::average_hops(map, pat);
  EXPECT_NEAR(cost, avg * static_cast<double>(pat.pairs.size()), 1e-9);
}

TEST(MappingOpt, NeverWorsensAndStaysValid) {
  const auto m = odd_machine();
  const p::Grid2D grid(14, 15);
  const auto pat = grid_halo(grid);
  for (auto scheme : {c::MapScheme::xyzt, c::MapScheme::txyz}) {
    const auto start = c::make_mapping(m, grid, scheme);
    const auto res = c::refine_mapping(start, pat);
    EXPECT_LE(res.final_cost, res.initial_cost) << c::to_string(scheme);
    EXPECT_TRUE(res.mapping.is_valid());
    EXPECT_NEAR(res.final_cost, c::hop_cost(res.mapping, pat), 1e-9);
  }
}

TEST(MappingOpt, ImprovesObliviousOnNonFoldableMachine) {
  // 14x15 on a 5x7x3 torus is non-foldable, so the constructive schemes
  // fall back to serpentine; local search must still find real gains
  // over the oblivious start.
  const auto m = odd_machine();
  const p::Grid2D grid(14, 15);
  const auto pat = grid_halo(grid);
  const auto start = c::make_mapping(m, grid, c::MapScheme::xyzt);
  c::MappingOptOptions opt;
  opt.max_passes = 8;
  const auto res = c::refine_mapping(start, pat, opt);
  EXPECT_LT(res.final_cost, 0.9 * res.initial_cost);
  EXPECT_GT(res.swaps, 0);
}

TEST(MappingOpt, NearOptimalStartIsLeftAlone) {
  // The fold already places all neighbours <= 1 hop; nothing to gain.
  const auto m = nestwx::workload::bluegene_l(1024);
  const p::Grid2D grid(32, 32);
  const auto part =
      c::huffman_partition(grid.bounds(), std::vector<double>{0.5, 0.5});
  const auto start =
      c::make_mapping(m, grid, c::MapScheme::multilevel, part);
  const auto pat = grid_halo(grid);
  const auto res = c::refine_mapping(start, pat);
  EXPECT_LE(res.final_cost, res.initial_cost);
  EXPECT_NEAR(res.final_cost, res.initial_cost,
              0.05 * res.initial_cost + 1e-9);
}

TEST(MappingOpt, RespectsWeights) {
  // A single heavy pair must end up adjacent even if light pairs suffer.
  const auto m = odd_machine();
  const p::Grid2D grid(14, 15);
  c::CommPattern pat;
  pat.add(0, 209, 1000.0);  // opposite corners under xyzt
  for (int r = 0; r < 20; ++r) pat.add(r, r + 1, 0.001);
  const auto start = c::make_mapping(m, grid, c::MapScheme::xyzt);
  c::MappingOptOptions opt;
  opt.max_passes = 10;
  const auto res = c::refine_mapping(start, pat, opt);
  EXPECT_LE(res.mapping.hops(0, 209), 1);
}

TEST(MappingOpt, DeterministicResults) {
  const auto m = odd_machine();
  const p::Grid2D grid(14, 15);
  const auto pat = grid_halo(grid);
  const auto start = c::make_mapping(m, grid, c::MapScheme::xyzt);
  const auto r1 = c::refine_mapping(start, pat);
  const auto r2 = c::refine_mapping(start, pat);
  EXPECT_EQ(r1.final_cost, r2.final_cost);
  EXPECT_EQ(r1.swaps, r2.swaps);
  for (int r = 0; r < start.nranks(); ++r)
    EXPECT_EQ(r1.mapping.placement(r), r2.mapping.placement(r));
}

TEST(MappingOpt, RejectsBadArguments) {
  const auto m = odd_machine();
  const p::Grid2D grid(14, 15);
  const auto start = c::make_mapping(m, grid, c::MapScheme::xyzt);
  EXPECT_THROW(c::refine_mapping(start, {}),
               nestwx::util::PreconditionError);
  c::CommPattern pat;
  pat.add(0, 1);
  c::MappingOptOptions opt;
  opt.max_passes = 0;
  EXPECT_THROW(c::refine_mapping(start, pat, opt),
               nestwx::util::PreconditionError);
}

/// Chaos drains of the campaign service: scripted fault injection with
/// typed recovery — backoff retries, per-request deadlines, poison
/// quarantine, breaker-gated spill degradation — and the headline
/// guarantee that a chaos drain's merged report is *still* byte-identical
/// at 1, 2 and 8 worker threads and across same-seed replays, pinned
/// against a golden file (regenerate deliberately with
/// NESTWX_REGEN_GOLDEN=1).

#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "chaos/chaos_plan.hpp"
#include "chaos/engine.hpp"
#include "core/perf_model.hpp"
#include "workload/machines.hpp"
#include "wrfsim/driver.hpp"

namespace sv = nestwx::serve;
namespace ch = nestwx::chaos;
namespace c = nestwx::core;
namespace w = nestwx::workload;

namespace {

std::shared_ptr<const c::PerfModel> shared_model(int cores) {
  static std::map<int, std::shared_ptr<const c::PerfModel>> cache;
  auto& slot = cache[cores];
  if (!slot) {
    slot = std::make_shared<c::DelaunayPerfModel>(
        c::DelaunayPerfModel::fit(nestwx::wrfsim::profile_basis(
            w::bluegene_l(cores), c::default_basis_domains())));
  }
  return slot;
}

sv::CampaignServer make_server(sv::ServeOptions options) {
  return sv::CampaignServer(w::bluegene_l(64), shared_model(64),
                            std::move(options));
}

/// A small submit: 2 members × 10 iterations keeps policy tests quick.
sv::Request submit(const std::string& id, double arrival, int priority,
                   std::uint64_t seed) {
  sv::Request r;
  r.kind = sv::RequestKind::submit;
  r.id = id;
  r.arrival = arrival;
  r.priority = priority;
  r.seed = seed;
  r.members = 2;
  r.iterations = 10;
  return r;
}

const sv::RequestOutcome& outcome_of(const sv::ServeReport& report,
                                     const std::string& id) {
  for (const auto& o : report.outcomes)
    if (o.request.id == id) return o;
  throw std::runtime_error("no outcome for " + id);
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string golden_path(const std::string& name) {
  return std::string(NESTWX_GOLDEN_DIR) + "/" + name;
}

void check_golden(const std::string& name, const std::string& actual) {
  const std::string path = golden_path(name);
  if (std::getenv("NESTWX_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_LOG_(INFO) << "regenerated " << path;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run with NESTWX_REGEN_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "report drifted from " << path
      << "; if intentional, regenerate with NESTWX_REGEN_GOLDEN=1";
}

/// Baseline policies for the focused tests: scripted chaos, a 3-attempt
/// retry budget, no deadline (tests opt in).
sv::ServeOptions chaos_options(const std::string& script) {
  sv::ServeOptions options;
  ch::RecoveryPolicies& rp = options.resilience;
  rp.plan = ch::ChaosPlan::parse(script);
  rp.plan.seed = 42;
  rp.retry.max_attempts = 3;
  rp.retry.seed = 42;
  return options;
}

bool has_incident(const sv::ServeReport& report, const std::string& kind,
                  const std::string& subject) {
  for (const auto& i : report.incidents)
    if (i.kind == kind && i.subject == subject) return true;
  return false;
}

}  // namespace

// --- Focused recovery semantics -----------------------------------------

TEST(ServeChaos, TransientFaultRetriesWithBackoffThenCompletes) {
  // One transient injection (budget 1): attempt 1 faults and parks the
  // request for a deterministic backoff; attempt 2 runs clean.
  auto server = make_server(chaos_options("execute:transient:r0:1"));
  const auto report =
      server.execute(std::vector<sv::Request>{submit("r0", 0.0, 0, 100)});
  const auto& out = outcome_of(report, "r0");
  EXPECT_EQ(out.status, sv::OutcomeStatus::completed);
  EXPECT_EQ(out.attempts, 2);
  EXPECT_TRUE(out.executed);
  // The retry's backoff delayed the service start past the arrival.
  EXPECT_GT(out.start, 0.0);
  EXPECT_EQ(report.metrics.retries, 1u);
  EXPECT_EQ(report.metrics.completed, 1u);
  EXPECT_EQ(report.metrics.quarantined, 0u);
  EXPECT_EQ(report.metrics.faults_injected, 1u);
  EXPECT_TRUE(has_incident(report, "inject-transient", "r0"));
  EXPECT_TRUE(has_incident(report, "retry", "r0"));
}

TEST(ServeChaos, ExhaustedRetryBudgetQuarantines) {
  // Unlimited transient faults: attempts 1 and 2 retry, attempt 3 spends
  // the budget and the request is quarantined as poison.
  auto server = make_server(chaos_options("execute:transient:r0:0"));
  const auto report =
      server.execute(std::vector<sv::Request>{submit("r0", 0.0, 0, 100)});
  const auto& out = outcome_of(report, "r0");
  EXPECT_EQ(out.status, sv::OutcomeStatus::quarantined);
  EXPECT_EQ(out.detail, "quarantined after 3 attempt(s)");
  EXPECT_EQ(out.attempts, 3);
  EXPECT_FALSE(out.executed);
  EXPECT_EQ(report.metrics.retries, 2u);
  EXPECT_EQ(report.metrics.quarantined, 1u);
  EXPECT_TRUE(has_incident(report, "quarantine", "r0"));
}

TEST(ServeChaos, PermanentFaultQuarantinesPrimaryAndCoalescedFollower) {
  // busy serves first; r0 queues behind it and r1 coalesces onto r0.
  // When r0 finally starts, the permanent fault skips the retry budget
  // entirely — and the quarantine takes the follower down with it.
  auto server = make_server(chaos_options("execute:permanent:r0:0"));
  const std::vector<sv::Request> requests = {
      submit("busy", 0.0, 0, 100),
      submit("r0", 1e-3, 0, 200),
      submit("r1", 2e-3, 0, 200),  // same work fingerprint as r0
  };
  const auto report = server.execute(requests);
  EXPECT_EQ(outcome_of(report, "busy").status, sv::OutcomeStatus::completed);
  const auto& r0 = outcome_of(report, "r0");
  EXPECT_EQ(r0.status, sv::OutcomeStatus::quarantined);
  EXPECT_EQ(r0.detail, "quarantined after 1 attempt(s)");
  EXPECT_EQ(r0.attempts, 1);  // permanent: no retry attempted
  const auto& r1 = outcome_of(report, "r1");
  EXPECT_EQ(r1.status, sv::OutcomeStatus::quarantined);
  EXPECT_EQ(r1.detail, "shared r0");
  EXPECT_EQ(report.metrics.quarantined, 2u);
  EXPECT_EQ(report.metrics.retries, 0u);
}

TEST(ServeChaos, StallPastTheDeadlineAbandonsTheExecution) {
  sv::ServeOptions options = chaos_options("execute:stall:r0:1:100000");
  options.resilience.deadline = 500.0;
  auto server = make_server(std::move(options));
  const auto report =
      server.execute(std::vector<sv::Request>{submit("r0", 0.0, 0, 100)});
  const auto& out = outcome_of(report, "r0");
  EXPECT_EQ(out.status, sv::OutcomeStatus::timed_out);
  EXPECT_EQ(out.detail, "deadline exceeded mid-service");
  // The executor abandoned the request at the deadline instant: the
  // campaign result is discarded and the machine freed there.
  EXPECT_FALSE(out.executed);
  EXPECT_EQ(out.finish, 500.0);
  EXPECT_EQ(report.metrics.timeouts, 1u);
  EXPECT_EQ(report.metrics.completed, 0u);
  EXPECT_TRUE(has_incident(report, "inject-stall", "r0"));
  EXPECT_TRUE(has_incident(report, "timeout", "r0"));
  EXPECT_EQ(sv::to_string(sv::OutcomeStatus::timed_out), "timed-out");
}

TEST(ServeChaos, CacheShardFaultDegradesToDirectCompute) {
  // Every sharded-cache access faults permanently: the service bypasses
  // the cache and computes directly — degraded, never wrong.
  auto server = make_server(chaos_options("cache_shard:permanent:*:0"));
  const auto report =
      server.execute(std::vector<sv::Request>{submit("r0", 0.0, 0, 100)});
  EXPECT_EQ(outcome_of(report, "r0").status, sv::OutcomeStatus::completed);
  EXPECT_GT(report.cache.cache_bypasses, 0u);
  EXPECT_EQ(report.cache.total.hits + report.cache.total.misses, 0u);
}

TEST(ServeChaos, ResilienceSectionIsAlwaysInTheReport) {
  // Chaos off: the engine is never created, but the report keeps its
  // resilience section (all zeros) so the JSON shape never depends on
  // the policy configuration.
  auto server = make_server(sv::ServeOptions{});
  EXPECT_EQ(server.engine(), nullptr);
  const auto report =
      server.execute(std::vector<sv::Request>{submit("r0", 0.0, 0, 100)});
  const std::string json =
      sv::report_to_json(report, server.machine(), server.options());
  EXPECT_NE(json.find("\"resilience\""), std::string::npos);
  EXPECT_NE(json.find("\"policy_fingerprint\""), std::string::npos);
  EXPECT_NE(json.find("\"incidents\": [\n    ]"), std::string::npos);
  EXPECT_TRUE(report.incidents.empty());
}

// --- The headline guarantee, under fire ---------------------------------

TEST(ServeChaos, ScriptedChaosDrainIsByteIdenticalAtAnyThreadCount) {
  // 200 mixed-priority requests under a three-pronged assault: a poison
  // request (unlimited transient faults on req-0000 outlive the 3-attempt
  // budget), one executor stall long enough to blow the 4000 s deadline,
  // and nine transient spill failures that trip the breaker (threshold 3)
  // into memory-only degradation until its 2000 s cooldown probe heals
  // it. The merged report — counters, incident log, breaker transitions —
  // must stay byte-identical at 1, 2 and 8 worker threads and across
  // same-seed replays.
  // Round-trip the workload through the spool's JSON encoding first: the
  // CI chaos-smoke job drains this exact spool with nestwx-serve and
  // diffs against the same golden, and %.12g request serialisation is
  // what the daemon actually sees.
  std::vector<sv::Request> requests;
  for (const auto& r : sv::generate_requests(7, 200, 30.0))
    requests.push_back(sv::parse_request(sv::to_json(r), r.id));
  const auto run = [&](int threads) {
    sv::ServeOptions options;
    options.threads = threads;
    options.queue_depth = 16;
    options.aging_rate = 0.01;
    options.cache.shards = 4;
    options.cache.shard_capacity = 2;
    options.cache.spill_dir = fresh_dir("serve_chaos_spill");
    ch::RecoveryPolicies& rp = options.resilience;
    rp.plan = ch::ChaosPlan::parse(
        "execute:transient:req-0000:0;"
        "execute:stall:req-0137:1:100000;"
        "store_spill:transient:*:9");
    rp.plan.seed = 42;
    rp.retry.max_attempts = 3;
    rp.retry.base_backoff = 5.0;
    rp.retry.seed = 42;
    rp.deadline = 4000.0;
    rp.breaker.failure_threshold = 3;
    rp.breaker.cooldown = 2000.0;
    auto server = make_server(std::move(options));
    const auto report = server.execute(requests);
    return std::make_pair(
        sv::report_to_json(report, server.machine(), server.options()),
        report.metrics);
  };

  const auto [baseline, metrics] = run(8);
  // The drain degraded gracefully instead of hanging or crashing: the
  // poison request quarantined, the stall timed out, the breaker tripped
  // on the spill disk and later healed.
  EXPECT_GE(metrics.quarantined, 1u);
  EXPECT_GE(metrics.retries, 2u);
  EXPECT_GE(metrics.timeouts, 1u);
  EXPECT_EQ(metrics.breaker_trips, 1u);
  EXPECT_EQ(metrics.breaker_closes, 1u);
  EXPECT_GT(metrics.faults_injected, 0u);
  EXPECT_GT(metrics.completed, 0u);

  EXPECT_EQ(run(1).first, baseline) << "1-thread chaos drain diverged";
  EXPECT_EQ(run(2).first, baseline) << "2-thread chaos drain diverged";
  EXPECT_EQ(run(8).first, baseline) << "same-seed chaos replay diverged";
  check_golden("serve_chaos_report.json", baseline);
}

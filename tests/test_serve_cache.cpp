/// The plan persistence tier and the sharded plan cache on top of it:
/// bit-exact ExecutionPlan round trips through the hardened container,
/// typed rejection of every corruption mode (mirroring the checkpoint
/// tests), and the spill-on-evict / reload-on-miss / recompute-on-damage
/// behaviour of ShardedPlanCache.

#include "serve/sharded_cache.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/perf_model.hpp"
#include "core/planner.hpp"
#include "iosim/plan_store.hpp"
#include "util/rng.hpp"
#include "workload/configs.hpp"
#include "workload/machines.hpp"
#include "wrfsim/driver.hpp"

namespace sv = nestwx::serve;
namespace cg = nestwx::campaign;
namespace c = nestwx::core;
namespace io = nestwx::iosim;
namespace w = nestwx::workload;
namespace fs = std::filesystem;

namespace {

std::string fresh_dir(const char* name) {
  const std::string dir = ::testing::TempDir() + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void write_bytes(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

std::shared_ptr<const c::PerfModel> shared_model(int cores) {
  static std::map<int, std::shared_ptr<const c::PerfModel>> cache;
  auto& slot = cache[cores];
  if (!slot) {
    slot = std::make_shared<c::DelaunayPerfModel>(
        c::DelaunayPerfModel::fit(nestwx::wrfsim::profile_basis(
            w::bluegene_l(cores), c::default_basis_domains())));
  }
  return slot;
}

/// A fully-populated plan: concurrent strategy, sibling partition,
/// weights and a rank placement — everything the container serialises.
const c::ExecutionPlan& busy_plan() {
  static const c::ExecutionPlan plan = [] {
    const auto machine = w::bluegene_l(64);
    nestwx::util::Rng rng(11);
    const auto config = w::random_configs(rng, 1).at(0);
    return c::plan_execution(machine, config, *shared_model(64),
                             c::Strategy::concurrent, c::Allocator::huffman,
                             c::MapScheme::multilevel);
  }();
  return plan;
}

void expect_plans_equal(const c::ExecutionPlan& a, const c::ExecutionPlan& b) {
  EXPECT_EQ(a.strategy, b.strategy);
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.parent_grid.px(), b.parent_grid.px());
  EXPECT_EQ(a.parent_grid.py(), b.parent_grid.py());
  ASSERT_EQ(a.weights.size(), b.weights.size());
  for (std::size_t i = 0; i < a.weights.size(); ++i)
    EXPECT_EQ(a.weights[i], b.weights[i]) << "weight " << i;
  ASSERT_EQ(a.partition.has_value(), b.partition.has_value());
  if (a.partition.has_value()) {
    ASSERT_EQ(a.partition->rects.size(), b.partition->rects.size());
    for (std::size_t i = 0; i < a.partition->rects.size(); ++i) {
      EXPECT_EQ(a.partition->rects[i].x0, b.partition->rects[i].x0);
      EXPECT_EQ(a.partition->rects[i].y0, b.partition->rects[i].y0);
      EXPECT_EQ(a.partition->rects[i].w, b.partition->rects[i].w);
      EXPECT_EQ(a.partition->rects[i].h, b.partition->rects[i].h);
    }
  }
  ASSERT_EQ(a.child_partitions.size(), b.child_partitions.size());
  ASSERT_EQ(a.mapping.has_value(), b.mapping.has_value());
  if (a.mapping.has_value()) {
    EXPECT_EQ(a.mapping->torus().dx(), b.mapping->torus().dx());
    EXPECT_EQ(a.mapping->torus().dy(), b.mapping->torus().dy());
    EXPECT_EQ(a.mapping->torus().dz(), b.mapping->torus().dz());
    EXPECT_EQ(a.mapping->cores_per_node(), b.mapping->cores_per_node());
    EXPECT_EQ(a.mapping->placements(), b.mapping->placements());
    EXPECT_TRUE(b.mapping->is_valid());
  }
}

c::ExecutionPlan tagged_plan(double tag) {
  c::ExecutionPlan plan;
  plan.weights = {tag};
  return plan;
}

double tag_of(const cg::PlanCacheBase::PlanPtr& plan) {
  return plan->weights.at(0);
}

}  // namespace

// --- Plan store: the hardened on-disk container -------------------------

TEST(PlanStore, RoundTripsABusyPlanBitExactly) {
  const std::string dir = fresh_dir("plan_store_rt");
  const std::string path = io::plan_store_path(dir, 0xABCDEF12u);
  io::save_plan(busy_plan(), 0xABCDEF12u, path);
  const c::ExecutionPlan back = io::load_plan(path, 0xABCDEF12u);
  expect_plans_equal(busy_plan(), back);
}

TEST(PlanStore, RoundTripsAMinimalPlan) {
  // Sequential plans carry no partition and no mapping; every optional
  // must survive as absent.
  c::ExecutionPlan plan;
  plan.strategy = c::Strategy::sequential;
  plan.scheme = c::MapScheme::xyzt;
  const std::string dir = fresh_dir("plan_store_min");
  const std::string path = io::plan_store_path(dir, 1);
  io::save_plan(plan, 1, path);
  const c::ExecutionPlan back = io::load_plan(path, 1);
  EXPECT_EQ(back.strategy, c::Strategy::sequential);
  EXPECT_FALSE(back.partition.has_value());
  EXPECT_FALSE(back.mapping.has_value());
  EXPECT_TRUE(back.weights.empty());
}

TEST(PlanStore, PathIsKeyedBySixteenHexDigits) {
  EXPECT_EQ(io::plan_store_path("/spill", 0x1234abcdu),
            "/spill/plan-000000001234abcd.bin");
}

TEST(PlanStore, WriteIsAtomic) {
  const std::string dir = fresh_dir("plan_store_atomic");
  const std::string path = io::plan_store_path(dir, 2);
  io::save_plan(busy_plan(), 2, path);
  io::save_plan(busy_plan(), 2, path);  // overwrite goes through the tmp too
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  EXPECT_NO_THROW(io::load_plan(path, 2));
}

TEST(PlanStore, RejectsMissingFile) {
  EXPECT_THROW(io::load_plan("/no/such/plan.bin", 1),
               io::CheckpointMissingError);
}

TEST(PlanStore, DistinguishesUnreadableFromMissing) {
  // "missing" means never spilled (a plain cache miss); "unreadable"
  // means the file is there but cannot be opened — a different failure
  // with a different recovery (keep the file, count the incident).
  const std::string dir = fresh_dir("plan_store_unreadable");
  const std::string path = io::plan_store_path(dir, 3);
  fs::create_directories(path);  // a directory squatting on the spill path
  EXPECT_THROW(io::load_plan(path, 3), io::CheckpointUnreadableError);
  // Both are CheckpointErrors, so existing catch-all recovery still works.
  EXPECT_THROW(io::load_plan(path, 3), io::CheckpointError);
}

TEST(PlanStore, RejectsWrongKey) {
  // A renamed or spliced spill file must not satisfy the wrong request:
  // the stored fingerprint is part of the verified header.
  const std::string dir = fresh_dir("plan_store_key");
  const std::string path = io::plan_store_path(dir, 77);
  io::save_plan(busy_plan(), 77, path);
  EXPECT_THROW(io::load_plan(path, 78), io::CheckpointCorruptError);
  EXPECT_NO_THROW(io::load_plan(path, 77));
}

TEST(PlanStore, RejectsGarbageAndShortFiles) {
  const std::string dir = fresh_dir("plan_store_junk");
  const std::string path = dir + "/junk.bin";
  write_bytes(path, std::string(200, 'x'));  // header-sized, wrong magic
  EXPECT_THROW(io::load_plan(path, 1), io::CheckpointCorruptError);
  write_bytes(path, "abc");  // shorter than any header
  EXPECT_THROW(io::load_plan(path, 1), io::CheckpointTruncatedError);
}

TEST(PlanStore, RejectsTruncationAtEveryLength) {
  // Cut the container after every byte; each prefix must be rejected
  // (truncated or corrupt, depending on where the cut lands relative to
  // the declared payload size), never loaded.
  const std::string dir = fresh_dir("plan_store_trunc");
  const std::string path = io::plan_store_path(dir, 5);
  io::save_plan(busy_plan(), 5, path);
  const std::string bytes = read_bytes(path);
  const std::string cut_path = dir + "/cut.bin";
  ASSERT_GT(bytes.size(), 32u);
  for (std::size_t cut = 0; cut < bytes.size(); cut += 7) {
    write_bytes(cut_path, bytes.substr(0, cut));
    EXPECT_THROW(io::load_plan(cut_path, 5), io::CheckpointError)
        << "prefix of " << cut << " bytes loaded silently";
  }
}

TEST(PlanStore, RejectsTrailingBytes) {
  const std::string dir = fresh_dir("plan_store_trail");
  const std::string path = io::plan_store_path(dir, 6);
  io::save_plan(busy_plan(), 6, path);
  write_bytes(path, read_bytes(path) + "x");
  EXPECT_THROW(io::load_plan(path, 6), io::CheckpointCorruptError);
}

TEST(PlanStore, RejectsEveryByteFlip) {
  // Exhaustive single-byte-flip sweep, exactly like the checkpoint
  // container's test: no byte of the file may flip silently.
  const std::string dir = fresh_dir("plan_store_flip");
  const std::string path = io::plan_store_path(dir, 9);
  io::save_plan(busy_plan(), 9, path);
  const std::string bytes = read_bytes(path);
  const std::string flip_path = dir + "/flip.bin";
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string mut = bytes;
    mut[i] = static_cast<char>(mut[i] ^ 0x40);
    write_bytes(flip_path, mut);
    EXPECT_THROW(io::load_plan(flip_path, 9), io::CheckpointError)
        << "flip at byte " << i << " loaded silently";
  }
}

// --- Sharded cache: routing, spill, reload, damage ----------------------

TEST(ShardedCache, RoutesKeysToStableShardsAndAggregatesStats) {
  sv::ShardedPlanCache::Options opt;
  opt.shards = 4;
  sv::ShardedPlanCache cache(opt);
  EXPECT_EQ(cache.shard_count(), 4u);
  for (std::uint64_t key = 0; key < 64; ++key) {
    const std::size_t shard = cache.shard_of(key);
    EXPECT_LT(shard, 4u);
    EXPECT_EQ(shard, cache.shard_of(key));  // stable
    cache.get_or_compute(key, [key] {
      return tagged_plan(static_cast<double>(key));
    });
  }
  for (std::uint64_t key = 0; key < 64; ++key)
    cache.get_or_compute(key, [] { return tagged_plan(-1.0); });
  const auto stats = cache.sharded_stats();
  EXPECT_EQ(stats.total.misses, 64u);
  EXPECT_EQ(stats.total.hits, 64u);
  EXPECT_EQ(stats.total.size, 64u);
  ASSERT_EQ(stats.shards.size(), 4u);
  std::size_t sum = 0;
  for (const auto& s : stats.shards) sum += s.misses;
  EXPECT_EQ(sum, 64u);
  // The rehash spreads this key population over every shard.
  for (const auto& s : stats.shards) EXPECT_GT(s.misses, 0u);
}

TEST(ShardedCache, GlobalStampStreamIsConsecutive) {
  sv::ShardedPlanCache::Options opt;
  opt.shards = 3;
  sv::ShardedPlanCache cache(opt);
  EXPECT_EQ(cache.reserve_stamps(5), 0u);
  EXPECT_EQ(cache.reserve_stamps(2), 5u);
  EXPECT_EQ(cache.reserve_stamps(1), 7u);
}

TEST(ShardedCache, TrimSpillsEvictionsAndMissesReloadThem) {
  const std::string spill = fresh_dir("sharded_spill");
  sv::ShardedPlanCache::Options opt;
  opt.shards = 1;  // one shard makes the LRU order exact
  opt.shard_capacity = 1;
  opt.spill_dir = spill;
  sv::ShardedPlanCache cache(opt);

  const std::uint64_t base = cache.reserve_stamps(2);
  cache.get_or_compute(10, base + 0, [] { return tagged_plan(10.0); });
  cache.get_or_compute(20, base + 1, [] { return tagged_plan(20.0); });
  EXPECT_EQ(cache.trim(), 1u);  // key 10 is least recent → spilled
  EXPECT_TRUE(fs::exists(io::plan_store_path(spill, 10)));
  EXPECT_EQ(cache.peek(10), nullptr);

  // A miss on the spilled key reloads from disk: the sentinel compute
  // must NOT run, and the reloaded plan carries the original payload.
  const auto reloaded = cache.get_or_compute(10, [] {
    ADD_FAILURE() << "reload fell through to recompute";
    return tagged_plan(-1.0);
  });
  EXPECT_DOUBLE_EQ(tag_of(reloaded), 10.0);

  const auto stats = cache.sharded_stats();
  EXPECT_EQ(stats.spills, 1u);
  EXPECT_EQ(stats.reloads, 1u);
  EXPECT_EQ(stats.spill_failures, 0u);
  EXPECT_EQ(stats.total.evictions, 1u);
  // The reload is still a shard-level miss (the entry was evicted).
  EXPECT_EQ(stats.total.misses, 3u);
  EXPECT_EQ(stats.total.capacity, 1u);
}

TEST(ShardedCache, DamagedSpillFileIsCountedRemovedAndRecomputed) {
  const std::string spill = fresh_dir("sharded_damage");
  sv::ShardedPlanCache::Options opt;
  opt.shards = 1;
  opt.shard_capacity = 1;
  opt.spill_dir = spill;
  sv::ShardedPlanCache cache(opt);

  const std::uint64_t base = cache.reserve_stamps(2);
  cache.get_or_compute(10, base + 0, [] { return tagged_plan(10.0); });
  cache.get_or_compute(20, base + 1, [] { return tagged_plan(20.0); });
  cache.trim();
  const std::string path = io::plan_store_path(spill, 10);
  ASSERT_TRUE(fs::exists(path));
  std::string bytes = read_bytes(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  write_bytes(path, bytes);

  // Corruption must never surface as an error or a wrong plan: the cache
  // counts it, removes the file, and recomputes.
  const auto plan =
      cache.get_or_compute(10, [] { return tagged_plan(99.0); });
  EXPECT_DOUBLE_EQ(tag_of(plan), 99.0);
  EXPECT_FALSE(fs::exists(path)) << "damaged spill file must be removed";
  const auto stats = cache.sharded_stats();
  EXPECT_EQ(stats.spill_failures, 1u);
  EXPECT_EQ(stats.reloads, 0u);
}

TEST(ShardedCache, UnreadableSpillFileIsCountedKeptAndRecomputed) {
  const std::string spill = fresh_dir("sharded_unreadable");
  sv::ShardedPlanCache::Options opt;
  opt.shards = 1;
  opt.shard_capacity = 1;
  opt.spill_dir = spill;
  sv::ShardedPlanCache cache(opt);

  const std::uint64_t base = cache.reserve_stamps(2);
  cache.get_or_compute(10, base + 0, [] { return tagged_plan(10.0); });
  cache.get_or_compute(20, base + 1, [] { return tagged_plan(20.0); });
  cache.trim();
  const std::string path = io::plan_store_path(spill, 10);
  ASSERT_TRUE(fs::exists(path));
  // Replace the spill file with a directory squatting on its path: the
  // reload cannot even open it — a distinct failure from damage.
  fs::remove(path);
  fs::create_directories(path);

  // Unreadable is recomputed like damage, but the path is LEFT IN PLACE:
  // it may recover, and "unreadable" must never masquerade as damage
  // (which is evidence-destroying removal) or as "never spilled".
  const auto plan =
      cache.get_or_compute(10, [] { return tagged_plan(99.0); });
  EXPECT_DOUBLE_EQ(tag_of(plan), 99.0);
  EXPECT_TRUE(fs::exists(path)) << "unreadable spill path must be kept";
  const auto stats = cache.sharded_stats();
  EXPECT_EQ(stats.reload_failures, 1u);
  EXPECT_EQ(stats.spill_failures, 0u);
  EXPECT_EQ(stats.reloads, 0u);
}

TEST(ShardedCache, EvictionsJustDropWithoutASpillDirectory) {
  sv::ShardedPlanCache::Options opt;
  opt.shards = 1;
  opt.shard_capacity = 1;
  sv::ShardedPlanCache cache(opt);
  const std::uint64_t base = cache.reserve_stamps(2);
  cache.get_or_compute(10, base + 0, [] { return tagged_plan(10.0); });
  cache.get_or_compute(20, base + 1, [] { return tagged_plan(20.0); });
  EXPECT_EQ(cache.trim(), 1u);
  // No disk tier: the evicted key is recomputed from scratch.
  const auto plan =
      cache.get_or_compute(10, [] { return tagged_plan(11.0); });
  EXPECT_DOUBLE_EQ(tag_of(plan), 11.0);
  const auto stats = cache.sharded_stats();
  EXPECT_EQ(stats.spills, 0u);
  EXPECT_EQ(stats.reloads, 0u);
}

TEST(ShardedCache, ClearDropsEntriesAndDiskCounters) {
  const std::string spill = fresh_dir("sharded_clear");
  sv::ShardedPlanCache::Options opt;
  opt.shards = 2;
  opt.shard_capacity = 1;
  opt.spill_dir = spill;
  sv::ShardedPlanCache cache(opt);
  for (std::uint64_t key = 0; key < 8; ++key)
    cache.get_or_compute(key, [] { return tagged_plan(0.0); });
  cache.trim();
  cache.clear();
  const auto stats = cache.sharded_stats();
  EXPECT_EQ(stats.total.size, 0u);
  EXPECT_EQ(stats.total.misses, 0u);
  EXPECT_EQ(stats.spills, 0u);
}

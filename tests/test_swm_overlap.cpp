/// Determinism stress test for the compute/exchange overlap path.
///
/// With a thread pool attached, NestedSimulation overlaps sibling ghost
/// staging with the parent step and integrates siblings concurrently,
/// computing feedback into per-sibling patches applied in fixed order.
/// The contract: results are byte-identical to sequential execution at
/// any thread count. These tests integrate the same configuration
/// sequentially and on pools of 1, 2 and 8 threads and require identical
/// raw-buffer hashes AND bitwise-identical swm::diagnose outputs.
///
/// The binary is registered in the TSan CI preset, so the staging/latch
/// handshake (TaskGroup, parallel_for, per-sibling patches) is also
/// exercised under ThreadSanitizer.

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <vector>

#include "core/plan_key.hpp"
#include "nest/simulation.hpp"
#include "swm/diagnostics.hpp"
#include "swm/init.hpp"
#include "util/thread_pool.hpp"

namespace s = nestwx::swm;
namespace n = nestwx::nest;
using nestwx::util::ThreadPool;

namespace {

s::State make_parent() {
  s::GridSpec g;
  g.nx = 56;
  g.ny = 48;
  g.dx = g.dy = 1000.0;
  s::State st = s::depression(g, 1e-4, 0.45, 0.55, 600.0, 25.0, 12e3);
  s::add_depression(st, 1e-4, 0.75, 0.3, 18.0, 9e3);
  return st;
}

std::vector<n::NestSpec> make_specs() {
  return {n::NestSpec{"sw", 4, 4, 12, 10, 2},
          n::NestSpec{"mid", 22, 18, 14, 12, 3},
          n::NestSpec{"ne", 40, 34, 10, 10, 2}};
}

std::uint64_t field_hash(const s::Field2D& f) {
  nestwx::core::Fingerprint fp;
  for (double v : f.raw()) fp.mix(v);
  return fp.value();
}

struct RunResult {
  std::vector<std::uint64_t> hashes;
  std::vector<s::Diagnostics> diags;  // parent + each sibling
};

bool diag_bits_equal(const s::Diagnostics& a, const s::Diagnostics& b) {
  return std::memcmp(&a, &b, sizeof(s::Diagnostics)) == 0;
}

/// Integrate `steps` parent steps; quarantine sibling `quarantine_k`
/// midway when >= 0 (exercises the skip paths in staging/feedback).
RunResult run_case(ThreadPool* pool, int steps, int quarantine_k) {
  s::ModelParams p;
  p.coriolis = 1e-4;
  p.drag = 2e-6;
  p.nonlinear = true;
  p.viscosity = 50.0;
  p.boundary = s::BoundaryKind::wall;
  n::NestedSimulation sim(make_parent(), p, make_specs());
  sim.set_thread_pool(pool);

  const double dt = 0.5 * sim.stable_dt();
  for (int i = 0; i < steps; ++i) {
    if (quarantine_k >= 0 && i == steps / 2)
      sim.set_sibling_quarantined(static_cast<std::size_t>(quarantine_k),
                                  true);
    sim.advance(dt);
  }

  RunResult r;
  r.hashes = {field_hash(sim.parent().h), field_hash(sim.parent().u),
              field_hash(sim.parent().v)};
  r.diags.push_back(s::diagnose(sim.parent()));
  for (std::size_t k = 0; k < sim.sibling_count(); ++k) {
    const s::State& c = sim.sibling(k).state();
    r.hashes.push_back(field_hash(c.h));
    r.hashes.push_back(field_hash(c.u));
    r.hashes.push_back(field_hash(c.v));
    r.diags.push_back(s::diagnose(c));
  }
  return r;
}

void expect_identical(const RunResult& got, const RunResult& want,
                      const char* label) {
  EXPECT_EQ(got.hashes, want.hashes) << label;
  ASSERT_EQ(got.diags.size(), want.diags.size());
  for (std::size_t i = 0; i < got.diags.size(); ++i)
    EXPECT_TRUE(diag_bits_equal(got.diags[i], want.diags[i]))
        << label << ": diagnostics of domain " << i
        << " are not bitwise identical";
}

constexpr int kThreadCounts[] = {1, 2, 8};

}  // namespace

TEST(SwmOverlap, ByteIdenticalToSequentialAtAnyThreadCount) {
  const RunResult sequential = run_case(nullptr, 8, -1);
  for (const int threads : kThreadCounts) {
    ThreadPool pool(threads);
    const RunResult overlapped = run_case(&pool, 8, -1);
    expect_identical(overlapped, sequential,
                     ("threads=" + std::to_string(threads)).c_str());
  }
}

TEST(SwmOverlap, QuarantinedSiblingSkippedIdentically) {
  // Quarantining mid-run must not perturb determinism: the quarantined
  // sibling contributes no staging task and no feedback patch.
  const RunResult sequential = run_case(nullptr, 8, 1);
  for (const int threads : kThreadCounts) {
    ThreadPool pool(threads);
    const RunResult overlapped = run_case(&pool, 8, 1);
    expect_identical(overlapped, sequential,
                     ("quarantine threads=" + std::to_string(threads))
                         .c_str());
  }
}

TEST(SwmOverlap, SharedPoolAcrossRepeatedRuns) {
  // One pool reused for several simulations back to back: TaskGroup's
  // private latch must not leak state between advance() calls or runs.
  ThreadPool pool(2);
  const RunResult first = run_case(&pool, 6, -1);
  const RunResult second = run_case(&pool, 6, -1);
  expect_identical(second, first, "repeat on shared pool");
  const RunResult sequential = run_case(nullptr, 6, -1);
  expect_identical(first, sequential, "shared pool vs sequential");
}

TEST(SwmOverlap, DetachReattachPool) {
  // Switching between sequential and overlapped execution mid-run keeps
  // the trajectory: both paths advance the same state machine.
  s::ModelParams p;
  p.viscosity = 50.0;
  p.boundary = s::BoundaryKind::wall;
  auto run_mixed = [&](ThreadPool* pool, bool toggle) {
    n::NestedSimulation sim(make_parent(), p, make_specs());
    const double dt = 0.5 * sim.stable_dt();
    for (int i = 0; i < 6; ++i) {
      if (toggle) sim.set_thread_pool(i % 2 ? pool : nullptr);
      sim.advance(dt);
    }
    return field_hash(sim.parent().h);
  };
  ThreadPool pool(2);
  EXPECT_EQ(run_mixed(&pool, true), run_mixed(nullptr, false));
}

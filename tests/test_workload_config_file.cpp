#include "workload/config_file.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace w = nestwx::workload;
using nestwx::util::PreconditionError;

namespace {
w::PlanFile parse(const std::string& text) {
  std::istringstream in(text);
  return w::parse_plan_file(in);
}
}  // namespace

TEST(PlanFile, ParsesFullExample) {
  const auto plan = parse(R"(
# two typhoon nests
machine   = bgl
cores     = 2048
parent    = 320x300
ratio     = 3
nest      = 394x418   # the big one
nest      = 232x202
inner     = 0: 150x150
allocator = huffman-single
scheme    = partition
)");
  EXPECT_EQ(plan.machine, "bgl");
  EXPECT_EQ(plan.cores, 2048);
  EXPECT_EQ(plan.parent, (std::pair{320, 300}));
  EXPECT_EQ(plan.ratio, 3);
  ASSERT_EQ(plan.nests.size(), 2u);
  EXPECT_EQ(plan.nests[0], (std::pair{394, 418}));
  ASSERT_EQ(plan.inner.size(), 1u);
  EXPECT_EQ(plan.inner[0].first, 0);
  EXPECT_EQ(plan.inner[0].second, (std::pair{150, 150}));
  EXPECT_EQ(plan.allocator, "huffman-single");
  EXPECT_EQ(plan.scheme, "partition");
}

TEST(PlanFile, DefaultsApplyWhenOmitted) {
  const auto plan = parse("nest = 200x200\n");
  EXPECT_EQ(plan.machine, "bgp");
  EXPECT_EQ(plan.cores, 1024);
  EXPECT_EQ(plan.scheme, "multilevel");
  EXPECT_EQ(plan.ratio, 3);
}

TEST(PlanFile, CommentsAndWhitespaceIgnored) {
  const auto plan = parse(
      "  # full-line comment\n"
      "\n"
      "   nest =   100x200  # trailing comment\n"
      "\t cores\t=\t512 \n");
  EXPECT_EQ(plan.cores, 512);
  ASSERT_EQ(plan.nests.size(), 1u);
  EXPECT_EQ(plan.nests[0], (std::pair{100, 200}));
}

TEST(PlanFile, ErrorsCarryLineNumbers) {
  try {
    parse("nest = 100x200\nbogus line without equals\n");
    FAIL() << "expected PreconditionError";
  } catch (const PreconditionError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(PlanFile, RejectsMalformedValues) {
  EXPECT_THROW(parse("nest = 100by200\n"), PreconditionError);
  EXPECT_THROW(parse("nest = -5x200\n"), PreconditionError);
  EXPECT_THROW(parse("cores = many\nnest = 100x100\n"),
               PreconditionError);
  EXPECT_THROW(parse("machine = cray\nnest = 100x100\n"),
               PreconditionError);
  EXPECT_THROW(parse("wibble = 3\nnest = 100x100\n"), PreconditionError);
  EXPECT_THROW(parse("nest =\n"), PreconditionError);
}

TEST(PlanFile, RequiresAtLeastOneNest) {
  EXPECT_THROW(parse("cores = 512\n"), PreconditionError);
}

TEST(PlanFile, ValidatesInnerSiblingReference) {
  EXPECT_THROW(parse("nest = 100x100\ninner = 3: 50x50\n"),
               PreconditionError);
  EXPECT_THROW(parse("nest = 100x100\ninner = 50x50\n"),
               PreconditionError);
}

TEST(PlanFile, ToConfigBuildsNestedConfig) {
  const auto plan = parse(
      "parent = 320x300\n"
      "nest = 240x240\n"
      "nest = 200x220\n"
      "inner = 1: 120x120\n");
  const auto cfg = plan.to_config("t");
  EXPECT_EQ(cfg.parent.nx, 320);
  ASSERT_EQ(cfg.siblings.size(), 2u);
  ASSERT_EQ(cfg.second_level.size(), 1u);
  EXPECT_EQ(cfg.second_level[0].sibling, 1);
  EXPECT_EQ(cfg.second_level[0].spec.nx, 120);
}

TEST(PlanFile, LoadFromMissingFileThrows) {
  EXPECT_THROW(w::load_plan_file("/no/such/file.plan"),
               PreconditionError);
}

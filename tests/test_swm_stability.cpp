/// Stability monitor tests: the health report must agree with the
/// Stepper's own CFL arithmetic bit for bit, trip each guard on the
/// state that violates it (in the documented order), and early-exit
/// finiteness scans must see NaN/Inf anywhere in a field.

#include "swm/stability.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "swm/diagnostics.hpp"
#include "swm/dynamics.hpp"
#include "swm/init.hpp"

namespace s = nestwx::swm;

namespace {

s::State vortex_state() {
  s::GridSpec g;
  g.nx = 48;
  g.ny = 40;
  g.dx = g.dy = 10e3;
  auto st = s::depression(g, 1e-4, 0.5, 0.5, 500.0, 15.0, 80e3);
  s::apply_boundary(st, s::BoundaryKind::wall);
  return st;
}

}  // namespace

TEST(AllFinite, FieldOverloadSeesNaNAnywhere) {
  s::Field2D f(8, 6, 2, 1.0);
  EXPECT_TRUE(s::all_finite(f));
  f(7, 5) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(s::all_finite(f));
  f(7, 5) = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(s::all_finite(f));
  f(7, 5) = 0.0;
  // Ghost cells feed the stencils, so they count too.
  f(-2, -2) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(s::all_finite(f));
}

TEST(AllFinite, StateChecksEveryPrognosticField) {
  auto st = vortex_state();
  EXPECT_TRUE(s::all_finite(st));
  st.v(3, 3) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(s::all_finite(st));
}

TEST(Stability, CourantMatchesStepperBitForBit) {
  const auto st = vortex_state();
  s::ModelParams p;
  p.coriolis = 1e-4;
  p.boundary = s::BoundaryKind::wall;
  s::Stepper stepper(st.grid, p);
  for (const double dt : {1.0, 25.0, 80.0}) {
    EXPECT_EQ(s::gravity_wave_courant(st, p.gravity, dt),
              stepper.courant(st, dt));
  }
}

TEST(Stability, HealthyStateReportsHealthy) {
  const auto st = vortex_state();
  s::ModelParams p;
  const double dt = s::Stepper(st.grid, p).stable_dt(st, 0.5);
  const auto r = s::check_stability(st, p, dt);
  EXPECT_TRUE(r.healthy());
  EXPECT_TRUE(r.finite);
  EXPECT_TRUE(r.reason.empty());
  EXPECT_GT(r.courant, 0.0);
  EXPECT_LE(r.courant, 1.0);
  EXPECT_GT(r.min_depth, 0.0);
}

TEST(Stability, NonFiniteShortCircuits) {
  auto st = vortex_state();
  st.h(10, 10) = std::numeric_limits<double>::quiet_NaN();
  const auto r = s::check_stability(st, s::ModelParams{}, 10.0);
  EXPECT_FALSE(r.healthy());
  EXPECT_FALSE(r.finite);
  EXPECT_EQ(r.reason, "non-finite field value");
  EXPECT_EQ(r.courant, 0.0);  // not computed on a NaN state
}

TEST(Stability, CflGuardTrips) {
  const auto st = vortex_state();
  s::ModelParams p;
  const double dt_ok = s::Stepper(st.grid, p).stable_dt(st, 0.5);
  const auto r = s::check_stability(st, p, 10.0 * dt_ok);
  EXPECT_FALSE(r.healthy());
  EXPECT_EQ(r.reason, "CFL exceeded");
  EXPECT_GT(r.courant, 1.0);
}

TEST(Stability, DryingGuardTrips) {
  auto st = vortex_state();
  st.h(5, 5) = 1e-3;  // below the 1e-2 m drying threshold
  const auto r = s::check_stability(st, s::ModelParams{}, 1.0);
  EXPECT_FALSE(r.healthy());
  EXPECT_EQ(r.reason, "depth below minimum");
  EXPECT_DOUBLE_EQ(r.min_depth, 1e-3);
}

TEST(Stability, SpeedGuardTrips) {
  auto st = vortex_state();
  // f = 0: no geostrophic surface tilt, so depth stays healthy and the
  // speed guard is the one that trips; dt is tiny so CFL stays quiet.
  s::add_zonal_flow(st, 0.0, 400.0);
  s::apply_boundary(st, s::BoundaryKind::channel);
  const auto r = s::check_stability(st, s::ModelParams{}, 0.5);
  EXPECT_FALSE(r.healthy());
  EXPECT_EQ(r.reason, "velocity above maximum");
  EXPECT_GT(r.max_speed, 300.0);
}

TEST(Stability, EtaGuardUsesThreshold) {
  const auto st = vortex_state();
  s::StabilityThresholds t;
  t.max_abs_eta = 400.0;  // ambient eta is ~500 m
  const auto r = s::check_stability(st, s::ModelParams{}, 0.5, t);
  EXPECT_FALSE(r.healthy());
  EXPECT_EQ(r.reason, "free surface out of range");
  // Default thresholds accept the same state.
  EXPECT_TRUE(s::check_stability(st, s::ModelParams{}, 0.5).healthy());
}

TEST(Stability, ReportIsDeterministic) {
  const auto a = s::check_stability(vortex_state(), s::ModelParams{}, 30.0);
  const auto b = s::check_stability(vortex_state(), s::ModelParams{}, 30.0);
  EXPECT_EQ(a.courant, b.courant);
  EXPECT_EQ(a.max_speed, b.max_speed);
  EXPECT_EQ(a.min_depth, b.min_depth);
  EXPECT_EQ(a.max_abs_eta, b.max_abs_eta);
  EXPECT_EQ(a.reason, b.reason);
}

/// Property tests of the foldable global mappings across many machine
/// geometries: bijectivity, the 1-hop virtual-x property, and graceful
/// fallback when the grid does not factor into the torus.

#include <gtest/gtest.h>

#include "core/mapping.hpp"
#include "procgrid/grid2d.hpp"
#include "workload/machines.hpp"

namespace c = nestwx::core;
namespace p = nestwx::procgrid;
namespace t = nestwx::topo;

namespace {

struct FoldCase {
  const char* name;
  int cores;
  bool bgl;  // else BG/P
  int px;
  int py;
};

c::GridPartition two_split(const p::Grid2D& grid) {
  return c::huffman_partition(grid.bounds(), std::vector<double>{0.6, 0.4});
}

}  // namespace

class FoldMapping : public ::testing::TestWithParam<FoldCase> {
 protected:
  t::MachineParams machine() const {
    const auto& cse = GetParam();
    return cse.bgl ? nestwx::workload::bluegene_l(cse.cores)
                   : nestwx::workload::bluegene_p(cse.cores);
  }
};

TEST_P(FoldMapping, BothAwareSchemesAreBijective) {
  const auto m = machine();
  const p::Grid2D grid(GetParam().px, GetParam().py);
  ASSERT_EQ(grid.size(), m.total_ranks());
  const auto part = two_split(grid);
  for (auto scheme : {c::MapScheme::partition, c::MapScheme::multilevel}) {
    const auto map = c::make_mapping(m, grid, scheme, part);
    EXPECT_TRUE(map.is_valid()) << c::to_string(scheme);
  }
}

TEST_P(FoldMapping, VirtualNeighboursStayClose) {
  const auto m = machine();
  const p::Grid2D grid(GetParam().px, GetParam().py);
  const auto part = two_split(grid);
  const auto map =
      c::make_mapping(m, grid, c::MapScheme::multilevel, part);
  // Sample the halo pattern; under a successful fold, neighbours must be
  // at most max(a,b) hops (z-jumps at fold boundaries), typically <= 1.
  c::CommPattern pat;
  for (int y = 0; y < grid.py(); y += 3)
    for (int x = 0; x + 1 < grid.px(); x += 2)
      pat.add(grid.rank(x, y), grid.rank(x + 1, y));
  EXPECT_LE(c::average_hops(map, pat), 1.5);
}

TEST_P(FoldMapping, AwareNoWorseThanObliviousOnSiblingTraffic) {
  const auto m = machine();
  const p::Grid2D grid(GetParam().px, GetParam().py);
  const auto part = two_split(grid);
  auto halo = [&](const p::Rect& rect) {
    c::CommPattern pat;
    for (int y = rect.y0; y < rect.y1(); ++y)
      for (int x = rect.x0; x < rect.x1(); ++x) {
        if (x + 1 < rect.x1()) pat.add(grid.rank(x, y), grid.rank(x + 1, y));
        if (y + 1 < rect.y1()) pat.add(grid.rank(x, y), grid.rank(x, y + 1));
      }
    return pat;
  };
  const auto obl = c::make_mapping(m, grid, c::MapScheme::xyzt);
  const auto ml = c::make_mapping(m, grid, c::MapScheme::multilevel, part);
  double obl_total = 0, ml_total = 0;
  for (const auto& rect : part.rects) {
    obl_total += c::average_hops(obl, halo(rect));
    ml_total += c::average_hops(ml, halo(rect));
  }
  EXPECT_LE(ml_total, obl_total + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, FoldMapping,
    ::testing::Values(FoldCase{"bgl_256", 256, true, 16, 16},
                      FoldCase{"bgl_512", 512, true, 16, 32},
                      FoldCase{"bgl_1024", 1024, true, 32, 32},
                      FoldCase{"bgp_512", 512, false, 16, 32},
                      FoldCase{"bgp_1024", 1024, false, 32, 32},
                      FoldCase{"bgp_2048", 2048, false, 32, 64},
                      FoldCase{"bgp_4096", 4096, false, 64, 64}),
    [](const auto& info) { return info.param.name; });

TEST(FoldFallback, NonFoldableGridStillMapsValidly) {
  // 30x34 does not factor into an 8x8x8 torus with 2 cores per node, so
  // both aware schemes must take their serpentine fallbacks.
  t::MachineParams m = nestwx::workload::bluegene_l(1024);
  (void)m;
  t::MachineParams odd;
  odd.name = "odd";
  odd.torus_x = 5;
  odd.torus_y = 7;
  odd.torus_z = 3;
  odd.cores_per_node = 2;
  odd.mode = t::NodeMode::virtual_node;  // 210 ranks
  const p::Grid2D grid(14, 15);
  ASSERT_EQ(grid.size(), odd.total_ranks());
  const auto part = c::huffman_partition(
      grid.bounds(), std::vector<double>{0.5, 0.3, 0.2});
  for (auto scheme : {c::MapScheme::partition, c::MapScheme::multilevel}) {
    const auto map = c::make_mapping(odd, grid, scheme, part);
    EXPECT_TRUE(map.is_valid()) << c::to_string(scheme);
    EXPECT_EQ(map.nranks(), 210);
  }
}

TEST(FoldFallback, SingleNodeMachine) {
  t::MachineParams tiny;
  tiny.name = "tiny";
  tiny.torus_x = tiny.torus_y = tiny.torus_z = 1;
  tiny.cores_per_node = 4;
  tiny.mode = t::NodeMode::virtual_node;
  const p::Grid2D grid(2, 2);
  const auto part = c::equal_partition(grid.bounds(), 2);
  for (auto scheme : {c::MapScheme::xyzt, c::MapScheme::txyz,
                      c::MapScheme::partition, c::MapScheme::multilevel}) {
    const auto map = c::make_mapping(tiny, grid, scheme, part);
    EXPECT_TRUE(map.is_valid());
    EXPECT_EQ(map.hops(0, 3), 0);  // all ranks co-located
  }
}

TEST(FoldAxesSwap, TallGridFoldsViaTransposedAxes) {
  // Px=16, Py=32 on BG/L 512 (8x8x4 nodes x2): the swap_axes variant
  // must kick in for one of the orientations.
  const auto m = nestwx::workload::bluegene_l(512);
  for (auto dims : {std::pair{16, 32}, std::pair{32, 16}}) {
    const p::Grid2D grid(dims.first, dims.second);
    const auto part = two_split(grid);
    const auto map =
        c::make_mapping(m, grid, c::MapScheme::multilevel, part);
    EXPECT_TRUE(map.is_valid());
  }
}

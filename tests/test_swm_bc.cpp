#include "swm/bc.hpp"

#include <gtest/gtest.h>

#include "swm/init.hpp"

namespace s = nestwx::swm;

namespace {
s::State indexed_state(int nx = 6, int ny = 5) {
  s::GridSpec g;
  g.nx = nx;
  g.ny = ny;
  g.halo = 2;
  s::State st(g);
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) st.h(i, j) = 100.0 * i + j;
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i <= nx; ++i) st.u(i, j) = 100.0 * i + j + 0.5;
  for (int j = 0; j <= ny; ++j)
    for (int i = 0; i < nx; ++i) st.v(i, j) = 100.0 * i + j + 0.25;
  return st;
}
}  // namespace

TEST(PeriodicBc, CenterFieldWrapsBothAxes) {
  auto st = indexed_state();
  s::apply_boundary(st, s::BoundaryKind::periodic);
  const int nx = st.grid.nx, ny = st.grid.ny;
  for (int j = 0; j < ny; ++j) {
    EXPECT_DOUBLE_EQ(st.h(-1, j), st.h(nx - 1, j));
    EXPECT_DOUBLE_EQ(st.h(-2, j), st.h(nx - 2, j));
    EXPECT_DOUBLE_EQ(st.h(nx, j), st.h(0, j));
  }
  for (int i = 0; i < nx; ++i) {
    EXPECT_DOUBLE_EQ(st.h(i, -1), st.h(i, ny - 1));
    EXPECT_DOUBLE_EQ(st.h(i, ny), st.h(i, 0));
  }
  // Corner ghosts wrap diagonally.
  EXPECT_DOUBLE_EQ(st.h(-1, -1), st.h(nx - 1, ny - 1));
}

TEST(PeriodicBc, FaceFieldsIdentifyDuplicateFace) {
  auto st = indexed_state();
  // Make interior faces inconsistent on purpose.
  st.u(st.grid.nx, 2) = -999.0;
  st.v(3, st.grid.ny) = -999.0;
  s::apply_boundary(st, s::BoundaryKind::periodic);
  // Face nx is the same physical face as face 0.
  for (int j = 0; j < st.grid.ny; ++j)
    EXPECT_DOUBLE_EQ(st.u(st.grid.nx, j), st.u(0, j));
  for (int i = 0; i < st.grid.nx; ++i)
    EXPECT_DOUBLE_EQ(st.v(i, st.grid.ny), st.v(i, 0));
  // Ghosts wrap with the cell period (nx), not nx+1.
  for (int j = 0; j < st.grid.ny; ++j) {
    EXPECT_DOUBLE_EQ(st.u(-1, j), st.u(st.grid.nx - 1, j));
    EXPECT_DOUBLE_EQ(st.u(st.grid.nx + 1, j), st.u(1, j));
  }
}

TEST(WallBc, NormalVelocityVanishesOnBoundaryFaces) {
  auto st = indexed_state();
  s::apply_boundary(st, s::BoundaryKind::wall);
  for (int j = 0; j < st.grid.ny; ++j) {
    EXPECT_DOUBLE_EQ(st.u(0, j), 0.0);
    EXPECT_DOUBLE_EQ(st.u(st.grid.nx, j), 0.0);
  }
  for (int i = 0; i < st.grid.nx; ++i) {
    EXPECT_DOUBLE_EQ(st.v(i, 0), 0.0);
    EXPECT_DOUBLE_EQ(st.v(i, st.grid.ny), 0.0);
  }
}

TEST(WallBc, NormalVelocityMirrorsAntisymmetrically) {
  auto st = indexed_state();
  s::apply_boundary(st, s::BoundaryKind::wall);
  for (int j = 0; j < st.grid.ny; ++j) {
    EXPECT_DOUBLE_EQ(st.u(-1, j), -st.u(1, j));
    EXPECT_DOUBLE_EQ(st.u(-2, j), -st.u(2, j));
    EXPECT_DOUBLE_EQ(st.u(st.grid.nx + 1, j), -st.u(st.grid.nx - 1, j));
  }
  for (int i = 0; i < st.grid.nx; ++i) {
    EXPECT_DOUBLE_EQ(st.v(i, -1), -st.v(i, 1));
    EXPECT_DOUBLE_EQ(st.v(i, st.grid.ny + 1), -st.v(i, st.grid.ny - 1));
  }
}

TEST(WallBc, DepthZeroGradient) {
  auto st = indexed_state();
  s::apply_boundary(st, s::BoundaryKind::wall);
  for (int j = 0; j < st.grid.ny; ++j) {
    EXPECT_DOUBLE_EQ(st.h(-1, j), st.h(0, j));
    EXPECT_DOUBLE_EQ(st.h(st.grid.nx, j), st.h(st.grid.nx - 1, j));
  }
}

TEST(OpenBc, ExtrapolatesAllFields) {
  auto st = indexed_state();
  s::apply_boundary(st, s::BoundaryKind::open);
  EXPECT_DOUBLE_EQ(st.h(-1, 2), st.h(0, 2));
  EXPECT_DOUBLE_EQ(st.u(-1, 2), st.u(0, 2));
  EXPECT_DOUBLE_EQ(st.v(2, -1), st.v(2, 0));
}

TEST(CenterBoundary, StandaloneHelperMatchesStateBehaviour) {
  s::Field2D f(4, 4, 1);
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 4; ++i) f(i, j) = i + 10 * j;
  s::apply_center_boundary(f, s::BoundaryKind::periodic);
  EXPECT_DOUBLE_EQ(f(-1, 0), f(3, 0));
  s::apply_center_boundary(f, s::BoundaryKind::open);
  EXPECT_DOUBLE_EQ(f(-1, 0), f(0, 0));
}

TEST(PeriodicBc, IdempotentOnInterior) {
  auto st = indexed_state();
  auto before = st;
  s::apply_boundary(st, s::BoundaryKind::periodic);
  s::apply_boundary(st, s::BoundaryKind::periodic);
  for (int j = 0; j < st.grid.ny; ++j)
    for (int i = 0; i < st.grid.nx; ++i)
      EXPECT_DOUBLE_EQ(st.h(i, j), before.h(i, j));
}

#include "core/planner.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "workload/configs.hpp"
#include "workload/machines.hpp"
#include "wrfsim/driver.hpp"

namespace c = nestwx::core;
namespace w = nestwx::workload;
using nestwx::util::PreconditionError;

namespace {
c::DelaunayPerfModel fitted_model(const nestwx::topo::MachineParams& m) {
  return c::DelaunayPerfModel::fit(
      nestwx::wrfsim::profile_basis(m, c::default_basis_domains()));
}
}  // namespace

TEST(Planner, SequentialPlanHasMappingNoPartition) {
  const auto machine = w::bluegene_l(256);
  const auto model = fitted_model(machine);
  const auto plan = c::plan_execution(machine, w::fig15_config(), model,
                                      c::Strategy::sequential,
                                      c::Allocator::huffman,
                                      c::MapScheme::xyzt);
  EXPECT_FALSE(plan.partition.has_value());
  ASSERT_TRUE(plan.mapping.has_value());
  EXPECT_EQ(plan.mapping->nranks(), 256);
  EXPECT_EQ(plan.parent_grid.size(), 256);
}

TEST(Planner, ConcurrentPlanTilesGrid) {
  const auto machine = w::bluegene_l(256);
  const auto model = fitted_model(machine);
  const auto plan = c::plan_execution(machine, w::table2_config(), model,
                                      c::Strategy::concurrent);
  ASSERT_TRUE(plan.partition.has_value());
  EXPECT_TRUE(plan.partition->is_exact_tiling());
  EXPECT_EQ(plan.partition->rects.size(), 4u);
  EXPECT_EQ(plan.weights.size(), 4u);
}

TEST(Planner, WeightsReflectDomainSizes) {
  const auto machine = w::bluegene_l(256);
  const auto model = fitted_model(machine);
  const auto plan = c::plan_execution(machine, w::table2_config(), model,
                                      c::Strategy::concurrent);
  // Sibling 0 (394x418) is the largest; it must get the top weight.
  for (std::size_t i = 1; i < plan.weights.size(); ++i)
    EXPECT_GT(plan.weights[0], plan.weights[i]);
}

TEST(Planner, NaiveStripsUsePointCounts) {
  const auto machine = w::bluegene_l(256);
  const auto model = fitted_model(machine);
  const auto plan = c::plan_execution(machine, w::table2_config(), model,
                                      c::Strategy::concurrent,
                                      c::Allocator::naive_strips);
  ASSERT_TRUE(plan.partition.has_value());
  EXPECT_TRUE(plan.partition->is_exact_tiling());
  const auto& cfg = w::table2_config();
  for (std::size_t i = 0; i < plan.weights.size(); ++i)
    EXPECT_DOUBLE_EQ(plan.weights[i],
                     static_cast<double>(cfg.siblings[i].points()));
  // Strips span the full grid height.
  for (const auto& r : plan.partition->rects)
    EXPECT_EQ(r.h, plan.parent_grid.py());
}

TEST(Planner, EqualAllocatorGivesEqualWeights) {
  const auto machine = w::bluegene_l(256);
  const auto model = fitted_model(machine);
  const auto plan = c::plan_execution(machine, w::table2_config(), model,
                                      c::Strategy::concurrent,
                                      c::Allocator::equal);
  for (double wgt : plan.weights) EXPECT_DOUBLE_EQ(wgt, 0.25);
}

TEST(Planner, AwareSchemeBuildsPartitionEvenWhenSequential) {
  const auto machine = w::bluegene_l(256);
  const auto model = fitted_model(machine);
  const auto plan = c::plan_execution(machine, w::table2_config(), model,
                                      c::Strategy::sequential,
                                      c::Allocator::huffman,
                                      c::MapScheme::multilevel);
  EXPECT_TRUE(plan.partition.has_value());
  EXPECT_TRUE(plan.mapping.has_value());
}

TEST(Planner, RejectsEmptyConfig) {
  const auto machine = w::bluegene_l(256);
  const auto model = fitted_model(machine);
  nestwx::core::NestedConfig empty;
  empty.parent = w::pacific_parent();
  EXPECT_THROW(c::plan_execution(machine, empty, model,
                                 c::Strategy::concurrent),
               PreconditionError);
}

TEST(Planner, SingleShotWeightsMatchModelRatios) {
  const auto machine = w::bluegene_l(256);
  const auto model = fitted_model(machine);
  const auto plan = c::plan_execution(machine, w::table2_config(), model,
                                      c::Strategy::concurrent,
                                      c::Allocator::huffman_single);
  const auto ratios = model.ratios(w::table2_config().siblings);
  ASSERT_EQ(plan.weights.size(), ratios.size());
  for (std::size_t i = 0; i < ratios.size(); ++i)
    EXPECT_DOUBLE_EQ(plan.weights[i], ratios[i]);
}

TEST(Planner, RefinementImprovesBlockBalanceAtScale) {
  // At 4096 cores the ghost-ring overhead on tiny tiles skews the
  // single-shot allocation; the refined allocator must not be worse.
  const auto machine = w::bluegene_p(4096);
  const auto model = c::DelaunayPerfModel::fit(
      nestwx::wrfsim::profile_basis(machine, c::default_basis_domains()));
  const auto cfg = w::make_config("refine", w::pacific_parent(),
                                  {{110, 130}, {400, 440}, {200, 300}});
  auto spread = [&](c::Allocator al) {
    const auto plan = c::plan_execution(machine, cfg, model,
                                        c::Strategy::concurrent, al);
    const auto res = nestwx::wrfsim::simulate_run(machine, cfg, plan);
    double mn = 1e300, mx = 0.0;
    for (double b : res.sibling_blocks) {
      mn = std::min(mn, b);
      mx = std::max(mx, b);
    }
    return mx / mn;
  };
  EXPECT_LE(spread(c::Allocator::huffman),
            spread(c::Allocator::huffman_single) * 1.05);
}

TEST(Planner, StrategyAndAllocatorNames) {
  EXPECT_EQ(c::to_string(c::Strategy::sequential), "sequential");
  EXPECT_EQ(c::to_string(c::Strategy::concurrent), "concurrent");
  EXPECT_EQ(c::to_string(c::Allocator::huffman), "huffman");
  EXPECT_EQ(c::to_string(c::Allocator::huffman_single), "huffman-single");
  EXPECT_EQ(c::to_string(c::Allocator::naive_strips), "naive-strips");
  EXPECT_EQ(c::to_string(c::Allocator::equal), "equal");
}

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace u = nestwx::util;

TEST(Rng, DeterministicForSameSeed) {
  u::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  u::Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval) {
  u::Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  u::Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.uniform(-2.0, 5.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  u::Rng r(123);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBoundsAreHit) {
  u::Rng r(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform_int(0, 5));
  EXPECT_EQ(seen.size(), 6u);
  EXPECT_TRUE(seen.count(0));
  EXPECT_TRUE(seen.count(5));
}

TEST(Rng, UniformIntDegenerateRange) {
  u::Rng r(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(3, 3), 3);
}

TEST(Rng, UniformIntNegativeRange) {
  u::Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(-10, -5);
    EXPECT_GE(v, -10);
    EXPECT_LE(v, -5);
  }
}

TEST(Rng, UniformIntRoughlyUniform) {
  u::Rng r(99);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[r.uniform_int(0, 9)]++;
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 100);
}

TEST(Splitmix, KnownSequenceIsStable) {
  std::uint64_t s1 = 0, s2 = 0;
  EXPECT_EQ(u::splitmix64(s1), u::splitmix64(s2));
  EXPECT_EQ(s1, s2);
  EXPECT_NE(u::splitmix64(s1), u::splitmix64(s1));
}

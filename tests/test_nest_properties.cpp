/// Parameterized sweeps of the nesting machinery over refinement ratios
/// and nest placements: stability, boundary-coupling consistency, and
/// accuracy of the restriction/interpolation pair.

#include <gtest/gtest.h>

#include <cmath>

#include "nest/simulation.hpp"
#include "swm/diagnostics.hpp"
#include "swm/init.hpp"

namespace n = nestwx::nest;
namespace s = nestwx::swm;

struct NestCase {
  const char* name;
  int ratio;
  int anchor;
  int cells;
};

class NestSweep : public ::testing::TestWithParam<NestCase> {
 protected:
  s::State parent() const {
    s::GridSpec g;
    g.nx = g.ny = 40;
    g.dx = g.dy = 5e3;
    return s::lake_at_rest(g, 400.0);
  }
  n::NestSpec spec() const {
    const auto& cse = GetParam();
    return n::NestSpec{"sweep", cse.anchor, cse.anchor, cse.cells,
                       cse.cells, cse.ratio};
  }
};

TEST_P(NestSweep, QuietStateRemainsQuiet) {
  s::ModelParams p;
  p.boundary = s::BoundaryKind::wall;
  n::NestedSimulation sim(parent(), p, {spec()});
  sim.run(8.0, 8);
  EXPECT_LT(sim.parent().u.interior_max_abs(), 1e-9);
  EXPECT_LT(sim.sibling(0).state().u.interior_max_abs(), 1e-9);
}

TEST_P(NestSweep, WavePassesThroughNestRegionStably) {
  auto par = parent();
  par.h(5, 20) += 2.0;
  s::ModelParams p;
  p.coriolis = 0.0;
  p.viscosity = 100.0;
  p.boundary = s::BoundaryKind::wall;
  n::NestedSimulation sim(std::move(par), p, {spec()});
  const double dt = sim.stable_dt(0.4);
  sim.run(dt, 60);
  EXPECT_TRUE(s::all_finite(sim.parent())) << GetParam().name;
  EXPECT_TRUE(s::all_finite(sim.sibling(0).state())) << GetParam().name;
  // No spurious amplification: deviations stay bounded by the initial
  // bump amplitude.
  const auto d = s::diagnose(sim.parent());
  EXPECT_LT(d.max_eta - 400.0, 2.5);
  EXPECT_GT(d.min_eta - 400.0, -2.5);
}

TEST_P(NestSweep, FeedbackKeepsParentMassReasonable) {
  auto par = parent();
  par.h(20, 20) += 1.0;  // inside the nest for all cases
  s::ModelParams p;
  p.boundary = s::BoundaryKind::wall;
  n::NestedSimulation sim(std::move(par), p, {spec()});
  const double mass0 = s::diagnose(sim.parent()).mass;
  const double dt = sim.stable_dt(0.4);
  sim.run(dt, 40);
  // Two-way feedback is not exactly conservative (the paper's WRF is not
  // either), but drift must stay tiny.
  EXPECT_NEAR(s::diagnose(sim.parent()).mass / mass0, 1.0, 2e-4)
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Ratios, NestSweep,
    ::testing::Values(NestCase{"r1", 1, 14, 12}, NestCase{"r2", 2, 14, 12},
                      NestCase{"r3", 3, 14, 12}, NestCase{"r4", 4, 14, 12},
                      NestCase{"corner", 3, 2, 10},
                      NestCase{"large", 3, 4, 32}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(NestAccuracy, FinerNestTracksAnalyticFieldBetter) {
  // Initialize a smooth bump; the nest's restriction back to the parent
  // must agree with the parent's own field far better than the grid
  // spacing would suggest (interpolation + restriction consistency).
  s::GridSpec g;
  g.nx = g.ny = 40;
  g.dx = g.dy = 5e3;
  auto parent = s::lake_at_rest(g, 300.0);
  for (int j = 0; j < g.ny; ++j)
    for (int i = 0; i < g.nx; ++i)
      parent.h(i, j) +=
          5.0 * std::exp(-0.02 * ((i - 20.0) * (i - 20.0) +
                                  (j - 20.0) * (j - 20.0)));
  const n::NestSpec spec{"acc", 12, 12, 16, 16, 3};
  n::NestedDomain nest(parent, spec);
  auto copy = parent;
  nest.feedback(copy, 1);
  double max_err = 0.0;
  for (int J = 1; J < 15; ++J)
    for (int I = 1; I < 15; ++I)
      max_err = std::max(max_err,
                         std::abs(copy.h(12 + I, 12 + J) -
                                  parent.h(12 + I, 12 + J)));
  EXPECT_LT(max_err, 0.05);  // ~1 % of the bump amplitude
}

TEST(NestCoupling, BoundaryBlendLinearInAlpha) {
  s::GridSpec g;
  g.nx = g.ny = 30;
  g.dx = g.dy = 4e3;
  const auto a = s::lake_at_rest(g, 100.0);
  const auto b = s::lake_at_rest(g, 300.0);
  n::NestedDomain nest(a, n::NestSpec{"blend", 8, 8, 10, 10, 2});
  for (double alpha : {0.0, 0.3, 0.5, 1.0}) {
    nest.force_boundary(a, b, alpha);
    EXPECT_NEAR(nest.state().h(-1, 3), 100.0 + 200.0 * alpha, 1e-9);
  }
}

#include "campaign/campaign.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <vector>

#include "campaign/plan_cache.hpp"
#include "campaign/space_share.hpp"
#include "core/allocation.hpp"
#include "core/plan_key.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "workload/configs.hpp"
#include "workload/machines.hpp"

namespace cg = nestwx::campaign;
namespace c = nestwx::core;
namespace w = nestwx::workload;
namespace u = nestwx::util;
using nestwx::util::PreconditionError;

namespace {

/// One fitted model per machine size, shared across tests (profiling is
/// deterministic but not free).
std::shared_ptr<const c::PerfModel> shared_model(int cores) {
  static std::map<int, std::shared_ptr<const c::PerfModel>> cache;
  auto& slot = cache[cores];
  if (!slot) {
    slot = std::make_shared<c::DelaunayPerfModel>(
        c::DelaunayPerfModel::fit(nestwx::wrfsim::profile_basis(
            w::bluegene_l(cores), c::default_basis_domains())));
  }
  return slot;
}

std::vector<cg::MemberSpec> ensemble(int n, int iterations = 20,
                                     int unique = 0) {
  u::Rng rng(99);
  if (unique <= 0) unique = n;
  const auto configs = w::random_configs(rng, unique);
  std::vector<cg::MemberSpec> members;
  for (int i = 0; i < n; ++i) {
    cg::MemberSpec spec;
    spec.name = "m" + std::to_string(i);
    spec.config = configs[static_cast<std::size_t>(i % unique)];
    spec.iterations = iterations;
    members.push_back(std::move(spec));
  }
  return members;
}

}  // namespace

// ---------- Second-level partition invariants ----------

TEST(SpaceShare, RectsAreDisjointAndCoverTheFace) {
  const auto machine = w::bluegene_l(256);
  const std::vector<double> weights{3.0, 1.0, 2.0, 1.5, 0.5};
  const auto subs = cg::share_machine(machine, weights);
  ASSERT_EQ(subs.size(), weights.size());

  const nestwx::procgrid::Rect face{0, 0, machine.torus_x, machine.torus_y};
  long long covered = 0;
  for (std::size_t i = 0; i < subs.size(); ++i) {
    EXPECT_FALSE(subs[i].rect.empty());
    EXPECT_TRUE(face.contains(subs[i].rect));
    covered += subs[i].rect.area();
    for (std::size_t j = i + 1; j < subs.size(); ++j)
      EXPECT_FALSE(nestwx::procgrid::overlaps(subs[i].rect, subs[j].rect))
          << "members " << i << " and " << j << " overlap";
  }
  EXPECT_EQ(covered, face.area());
}

TEST(SpaceShare, AreasProportionalToPredictedRunTimes) {
  const auto machine = w::bluegene_l(1024);  // 8x8x8 face: fine granularity
  const std::vector<double> weights{6.0, 3.0, 2.0, 1.0};
  const auto subs = cg::share_machine(machine, weights);

  c::GridPartition partition;
  partition.grid =
      nestwx::procgrid::Rect{0, 0, machine.torus_x, machine.torus_y};
  for (const auto& s : subs) partition.rects.push_back(s.rect);
  EXPECT_TRUE(partition.is_exact_tiling());
  // Integer rounding aside, no member may stray far from its share.
  EXPECT_LT(partition.max_overallocation(weights), 1.5);
}

TEST(SpaceShare, SubMachinesInheritCalibration) {
  const auto machine = w::bluegene_p(512);
  const auto subs = cg::share_machine(machine, std::vector<double>{1.0, 1.0});
  for (const auto& s : subs) {
    EXPECT_EQ(s.machine.torus_x, s.rect.w);
    EXPECT_EQ(s.machine.torus_y, s.rect.h);
    EXPECT_EQ(s.machine.torus_z, machine.torus_z);
    EXPECT_EQ(s.machine.link_bandwidth, machine.link_bandwidth);
    EXPECT_EQ(s.machine.mode, machine.mode);
  }
}

TEST(SpaceShare, RejectsImpossibleRequests) {
  const auto machine = w::bluegene_l(128);  // small face
  EXPECT_THROW(cg::share_machine(machine, std::vector<double>{}),
               PreconditionError);
  const std::vector<double> too_many(
      static_cast<std::size_t>(machine.torus_x * machine.torus_y + 1), 1.0);
  EXPECT_THROW(cg::share_machine(machine, too_many), PreconditionError);
}

TEST(SpaceShare, WeightGrowsWithDomainAndIterations) {
  const auto model = shared_model(256);
  auto members = ensemble(1);
  const auto& config = members[0].config;
  const double w10 = cg::predicted_run_weight(config, *model, 10);
  const double w20 = cg::predicted_run_weight(config, *model, 20);
  EXPECT_NEAR(w20, 2.0 * w10, 1e-9 * w20);

  auto bigger = config;
  bigger.siblings[0].nx += 120;
  bigger.siblings[0].ny += 120;
  EXPECT_GT(cg::predicted_run_weight(bigger, *model, 10), w10);
}

// ---------- Plan cache ----------

TEST(PlanCache, HitMissCountsAreDeterministic) {
  const auto machine = w::bluegene_l(256);
  const auto model = shared_model(256);
  const auto members = ensemble(1);
  const auto key = c::plan_fingerprint(machine, members[0].config,
                                       c::Strategy::concurrent,
                                       c::Allocator::huffman,
                                       c::MapScheme::multilevel);
  auto compute = [&] {
    return c::plan_execution(machine, members[0].config, *model,
                             c::Strategy::concurrent);
  };

  cg::PlanCache cache;
  std::atomic<int> started{0};
  u::ThreadPool pool(8);
  u::parallel_for(pool, 16, [&](int) {
    ++started;
    cache.get_or_compute(key, compute);
  });
  EXPECT_EQ(started.load(), 16);
  // Single flight: exactly one miss no matter how the 16 requests raced.
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 15u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PlanCache, ReturnsTheSamePlanObject) {
  const auto machine = w::bluegene_l(256);
  const auto model = shared_model(256);
  const auto members = ensemble(1);
  const auto key = c::plan_fingerprint(machine, members[0].config,
                                       c::Strategy::concurrent,
                                       c::Allocator::huffman,
                                       c::MapScheme::multilevel);
  cg::PlanCache cache;
  auto compute = [&] {
    return c::plan_execution(machine, members[0].config, *model,
                             c::Strategy::concurrent);
  };
  const auto a = cache.get_or_compute(key, compute);
  const auto b = cache.get_or_compute(key, compute);
  EXPECT_EQ(a.get(), b.get());  // memoised, not recomputed
  EXPECT_EQ(cache.peek(key).get(), a.get());
  EXPECT_EQ(cache.peek(key ^ 1), nullptr);
}

TEST(PlanCache, FailedComputationIsWithdrawn) {
  cg::PlanCache cache;
  EXPECT_THROW(cache.get_or_compute(
                   7, []() -> c::ExecutionPlan {
                     throw PreconditionError("planning failed");
                   }),
               PreconditionError);
  EXPECT_EQ(cache.size(), 0u);
  // The key is retryable afterwards.
  const auto plan =
      cache.get_or_compute(7, [] { return c::ExecutionPlan{}; });
  EXPECT_NE(plan, nullptr);
}

// ---------- Campaign runs ----------

TEST(Campaign, ReportIsByteIdenticalAtOneVsEightThreads) {
  const auto machine = w::bluegene_l(256);
  const auto model = shared_model(256);
  const auto members = ensemble(6, 10, 4);  // includes repeated configs

  cg::CampaignOptions base;
  cg::CampaignScheduler s1(machine, model);
  cg::CampaignScheduler s8(machine, model);
  auto opts1 = base;
  opts1.threads = 1;
  auto opts8 = base;
  opts8.threads = 8;
  const auto r1 = s1.run(members, opts1);
  const auto r8 = s8.run(members, opts8);
  EXPECT_EQ(cg::report_to_json(r1, machine, opts1),
            cg::report_to_json(r8, machine, opts8));
}

TEST(Campaign, RepeatedMembersHitThePlanCache) {
  const auto machine = w::bluegene_l(256);
  const auto model = shared_model(256);
  const auto members = ensemble(6, 10, 3);  // each config used twice

  cg::CampaignScheduler scheduler(machine, model);
  const auto cold = scheduler.run(members, {});
  // Identical configs land in different waves only if the face is tiny;
  // here one wave holds all six, so the three duplicates hit.
  EXPECT_EQ(cold.metrics.cache_misses, 3u);
  EXPECT_EQ(cold.metrics.cache_hits, 3u);

  const auto warm = scheduler.run(members, {});
  EXPECT_EQ(warm.metrics.cache_misses, 0u);
  EXPECT_EQ(warm.metrics.cache_hits, 6u);
  EXPECT_DOUBLE_EQ(warm.metrics.cache_hit_rate, 1.0);
  // A warm cache changes hit flags, never results.
  for (std::size_t i = 0; i < members.size(); ++i) {
    EXPECT_DOUBLE_EQ(warm.members[i].run_seconds,
                     cold.members[i].run_seconds);
  }
}

TEST(Campaign, CacheOffStillWorks) {
  const auto machine = w::bluegene_l(256);
  const auto model = shared_model(256);
  const auto members = ensemble(4, 10, 2);
  cg::CampaignScheduler scheduler(machine, model);
  cg::CampaignOptions options;
  options.use_plan_cache = false;
  const auto report = scheduler.run(members, options);
  EXPECT_EQ(report.metrics.cache_hits, 0u);
  EXPECT_EQ(report.metrics.cache_misses, 4u);
  EXPECT_EQ(scheduler.cache().size(), 0u);
}

TEST(Campaign, SpaceSharingBeatsTimeSharingOnMakespan) {
  // The win needs a machine past the single-run saturation point (Fig. 2:
  // nested runs stop scaling around 512 BG/L cores): a lone member cannot
  // use 1024 cores efficiently, four quarter-machine members can.
  const auto machine = w::bluegene_l(1024);
  const auto model = shared_model(1024);
  const auto members = ensemble(4, 10);

  cg::CampaignScheduler scheduler(machine, model);
  cg::CampaignOptions space;
  const auto shared = scheduler.run(members, space);
  cg::CampaignOptions turn;
  turn.sharing = cg::Sharing::time;
  const auto sequential = scheduler.run(members, turn);

  EXPECT_EQ(shared.metrics.waves, 1);
  EXPECT_EQ(sequential.metrics.waves, 4);
  EXPECT_LT(shared.metrics.makespan, sequential.metrics.makespan);
}

TEST(Campaign, WavesRespectMaxConcurrent) {
  const auto machine = w::bluegene_l(256);
  const auto model = shared_model(256);
  const auto members = ensemble(5, 10);
  cg::CampaignScheduler scheduler(machine, model);
  cg::CampaignOptions options;
  options.max_concurrent = 2;
  const auto report = scheduler.run(members, options);
  EXPECT_EQ(report.metrics.waves, 3);  // 2 + 2 + 1
  // Later waves start after earlier ones finish.
  double wave1_start = 0.0;
  for (const auto& m : report.members)
    if (m.wave == 0)
      wave1_start = std::max(wave1_start, m.run_seconds);
  for (const auto& m : report.members)
    if (m.wave == 1)
      EXPECT_GE(m.completion_seconds, wave1_start + m.run_seconds - 1e-12);
  // Every member's sub-machine stays within the face and waves tile it
  // per-wave, so rects within a wave are disjoint.
  for (const auto& a : report.members)
    for (const auto& b : report.members)
      if (&a != &b && a.wave == b.wave)
        EXPECT_FALSE(nestwx::procgrid::overlaps(a.rect, b.rect));
}

TEST(Campaign, MetricsAreInternallyConsistent) {
  const auto machine = w::bluegene_l(256);
  const auto model = shared_model(256);
  const auto members = ensemble(4, 10);
  cg::CampaignScheduler scheduler(machine, model);
  const auto report = scheduler.run(members, {});
  const auto& m = report.metrics;
  EXPECT_EQ(m.members, 4);
  EXPECT_GT(m.makespan, 0.0);
  EXPECT_NEAR(m.throughput, 4.0 / m.makespan, 1e-12);
  double max_completion = 0.0;
  for (const auto& r : report.members) {
    EXPECT_GT(r.run_seconds, 0.0);
    EXPECT_NEAR(r.run_seconds, r.run.total * members[0].iterations,
                1e-9 * r.run_seconds);
    max_completion = std::max(max_completion, r.completion_seconds);
  }
  EXPECT_DOUBLE_EQ(m.makespan, max_completion);
  EXPECT_LE(m.latency_p50, m.latency_p90);
  EXPECT_LE(m.latency_p90, m.latency_p99);
  EXPECT_LE(m.latency_p99, m.makespan + 1e-12);
}

TEST(Campaign, RejectsBadInput) {
  const auto machine = w::bluegene_l(256);
  const auto model = shared_model(256);
  cg::CampaignScheduler scheduler(machine, model);
  EXPECT_THROW(scheduler.run({}, {}), PreconditionError);
  auto members = ensemble(1);
  members[0].iterations = 0;
  EXPECT_THROW(scheduler.run(members, {}), PreconditionError);
  members[0].iterations = 10;
  cg::CampaignOptions options;
  options.threads = 0;
  EXPECT_THROW(scheduler.run(members, options), PreconditionError);
}

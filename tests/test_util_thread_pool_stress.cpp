/// Stress tests for util::ThreadPool under contention: thousands of tasks,
/// nested (worker-local) submission forcing steals, and repeated
/// cancel/resume/re-enqueue cycles. The assertions are invariants, not
/// schedules — the suite is meant to run under TSan (see the sanitizer CI
/// jobs), where any lock misuse in the cancel/steal paths surfaces.

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "util/rng.hpp"

namespace u = nestwx::util;

TEST(ThreadPoolStress, ThousandsOfTasksAllExecuteExactlyOnce) {
  u::ThreadPool pool(8);
  constexpr int kTasks = 5000;
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& h : hits) h.store(0);
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_TRUE(pool.submit([&hits, i] {
      hits[static_cast<std::size_t>(i)].fetch_add(1,
                                                  std::memory_order_relaxed);
    }));
  }
  pool.wait_idle();
  for (int i = 0; i < kTasks; ++i)
    ASSERT_EQ(hits[static_cast<std::size_t>(i)].load(), 1) << "task " << i;
  EXPECT_GE(pool.executed(), static_cast<std::size_t>(kTasks));
}

TEST(ThreadPoolStress, NestedSubmissionForcesStealsAndCompletes) {
  u::ThreadPool pool(8);
  constexpr int kRoots = 200;
  constexpr int kChildren = 50;
  std::atomic<int> done{0};
  for (int r = 0; r < kRoots; ++r) {
    ASSERT_TRUE(pool.submit([&pool, &done] {
      // Children land on this worker's own deque; the other seven workers
      // must steal them to drain the pool.
      for (int c = 0; c < kChildren; ++c)
        pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
      done.fetch_add(1, std::memory_order_relaxed);
    }));
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), kRoots * (kChildren + 1));
}

TEST(ThreadPoolStress, CancelDropsPendingButNeverLosesRunningWork) {
  u::Rng rng(2024);
  u::ThreadPool pool(4);
  std::atomic<int> ran{0};
  int submitted = 0;
  for (int round = 0; round < 20; ++round) {
    pool.resume();
    const int batch = 200 + static_cast<int>(rng.uniform_int(0, 300));
    int accepted = 0;
    for (int i = 0; i < batch; ++i) {
      if (pool.submit(
              [&ran] { ran.fetch_add(1, std::memory_order_relaxed); }))
        ++accepted;
    }
    submitted += accepted;
    if (rng.uniform() < 0.7) {
      // Cancel at a random point mid-drain; queued tasks are dropped,
      // running tasks finish. Dropped + ran must account for everything.
      std::this_thread::sleep_for(
          std::chrono::microseconds(rng.uniform_int(0, 500)));
      pool.cancel();
      EXPECT_TRUE(pool.cancelled());
      EXPECT_FALSE(pool.submit([] {}));  // rejected while cancelled
    }
    pool.wait_idle();
    EXPECT_LE(ran.load(), submitted);
  }
  // After a final resume, the pool is fully usable again.
  pool.resume();
  std::atomic<int> after{0};
  for (int i = 0; i < 500; ++i)
    ASSERT_TRUE(pool.submit(
        [&after] { after.fetch_add(1, std::memory_order_relaxed); }));
  pool.wait_idle();
  EXPECT_EQ(after.load(), 500);
  EXPECT_EQ(static_cast<std::size_t>(ran.load() + after.load()),
            pool.executed());
}

TEST(ThreadPoolStress, CancelRaceWithNestedSubmission) {
  u::Rng rng(7);
  for (int round = 0; round < 10; ++round) {
    u::ThreadPool pool(8);
    std::atomic<int> done{0};
    for (int r = 0; r < 100; ++r) {
      pool.submit([&pool, &done] {
        for (int c = 0; c < 20; ++c)
          pool.submit(
              [&done] { done.fetch_add(1, std::memory_order_relaxed); });
      });
    }
    std::this_thread::sleep_for(
        std::chrono::microseconds(rng.uniform_int(0, 2000)));
    pool.cancel();
    pool.wait_idle();  // must not deadlock with workers mid-submit
    const int after_cancel = done.load();
    pool.wait_idle();
    EXPECT_EQ(done.load(), after_cancel) << "work ran after the drain";
  }
}

TEST(ThreadPoolStress, ParallelForUnderRepeatedCancelledPools) {
  // parallel_for on a fresh pool right after another pool was cancelled —
  // exercises construction/teardown next to in-flight cancellation.
  for (int round = 0; round < 5; ++round) {
    u::ThreadPool doomed(4);
    std::atomic<int> noise{0};
    for (int i = 0; i < 1000; ++i)
      doomed.submit(
          [&noise] { noise.fetch_add(1, std::memory_order_relaxed); });
    doomed.cancel();

    u::ThreadPool pool(8);
    constexpr int kN = 2000;
    std::vector<int> slots(kN, -1);
    u::parallel_for(pool, kN, [&slots](int i) {
      slots[static_cast<std::size_t>(i)] = i * i;
    });
    for (int i = 0; i < kN; ++i)
      ASSERT_EQ(slots[static_cast<std::size_t>(i)], i * i);
    doomed.wait_idle();
  }
}

TEST(ThreadPoolStress, ExceptionsSurfaceOnceAndPoolSurvives) {
  u::ThreadPool pool(4);
  for (int i = 0; i < 100; ++i)
    pool.submit([i] {
      if (i == 37) throw std::runtime_error("task 37 failed");
    });
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  // The error is cleared; the pool keeps working.
  std::atomic<int> done{0};
  for (int i = 0; i < 100; ++i)
    pool.submit([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(done.load(), 100);
}

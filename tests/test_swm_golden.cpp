/// Golden bit-exactness tests for the shallow-water dynamical core.
///
/// The fast-path kernels (specialized tendency variants, the fused RK3
/// stage loops, edge-wise ghost fills) promise *bit-identical* results to
/// the straightforward reference formulation: same expressions, same
/// evaluation order, no reassociation. These tests lock that promise in
/// with FNV-1a fingerprints of the raw h/u/v buffers (interior + ghosts)
/// after N steps, for every (nonlinear × viscous) variant under every
/// boundary kind, plus a two-sibling nested run.
///
/// The goldens were generated from the pre-fast-path scalar implementation
/// and must never drift; regenerate only for a deliberate numerics change:
///
///   NESTWX_REGEN_GOLDEN=1 ./test_swm_golden
///
/// Initial conditions use only polynomial arithmetic (no libm
/// transcendentals) so the fingerprints are portable across libm versions.

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "core/plan_key.hpp"
#include "nest/simulation.hpp"
#include "swm/bc.hpp"
#include "swm/dynamics.hpp"
#include "swm/simd.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace s = nestwx::swm;
namespace n = nestwx::nest;

namespace {

/// Smooth, fully portable initial state: polynomial bumps in h/u/v and a
/// gentle terrain ridge. Ghosts are seeded too (the `open` scenario keeps
/// them prescribed through the run).
s::State poly_state(int nx, int ny) {
  s::GridSpec g;
  g.nx = nx;
  g.ny = ny;
  g.dx = g.dy = 1000.0;
  s::State st(g);
  const int halo = g.halo;
  auto fx = [&](int i, int n) {
    const double x = (static_cast<double>(i) + 0.5) / n;
    return x * (1.0 - x);
  };
  for (int j = -halo; j < ny + halo; ++j) {
    for (int i = -halo; i < nx + halo; ++i) {
      const double wx = fx(i, nx);
      const double wy = fx(j, ny);
      st.h(i, j) = 500.0 + 320.0 * wx * wy + 0.25 * ((i * 7 + j * 3) % 5);
      st.b(i, j) = 12.0 * wx * wx * (1.0 + 0.5 * wy);
    }
  }
  for (int j = -halo; j < ny + halo; ++j)
    for (int i = -halo; i < nx + 1 + halo; ++i)
      st.u(i, j) = 0.8 * fx(j, ny) * (1.0 - 2.0 * fx(i, nx + 1));
  for (int j = -halo; j < ny + 1 + halo; ++j)
    for (int i = -halo; i < nx + halo; ++i)
      st.v(i, j) = -0.6 * fx(i, nx) * (1.0 - 2.0 * fx(j, ny + 1));
  return st;
}

std::uint64_t field_hash(const s::Field2D& f) {
  nestwx::core::Fingerprint fp;
  for (double v : f.raw()) fp.mix(v);
  return fp.value();
}

std::string state_line(const std::string& name, const s::State& st) {
  return name + " h=" + nestwx::util::json_hex(field_hash(st.h)) +
         " u=" + nestwx::util::json_hex(field_hash(st.u)) +
         " v=" + nestwx::util::json_hex(field_hash(st.v)) +
         " hsum=" + nestwx::util::json_num(st.h.interior_sum()) + "\n";
}

/// The four (nonlinear × viscous) kernel variants.
struct Variant {
  const char* name;
  bool nonlinear;
  double viscosity;
};
constexpr Variant kVariants[] = {
    {"nonlinear_viscous", true, 80.0},
    {"nonlinear_inviscid", true, 0.0},
    {"linear_viscous", false, 80.0},
    {"linear_inviscid", false, 0.0},
};

/// NESTWX_TEST_THREADS=N (N >= 1) runs every integration in this file
/// row-band-parallel on an N-thread pool; the goldens must not move a
/// bit. The simd CI job exercises the whole suite this way at 2 threads;
/// SwmGoldenParallel below pins 1/2/8 in-process.
int env_threads() {
  const char* env = std::getenv("NESTWX_TEST_THREADS");
  return env != nullptr ? std::atoi(env) : 0;
}

/// Run all four variants under one boundary kind and report fingerprints.
/// `threads` < 0 defers to NESTWX_TEST_THREADS; 0 = serial sweeps.
std::string run_variants(s::BoundaryKind bc, int threads = -1) {
  if (threads < 0) threads = env_threads();
  std::unique_ptr<nestwx::util::ThreadPool> pool;
  if (threads > 0)
    pool = std::make_unique<nestwx::util::ThreadPool>(threads);
  std::string report;
  for (const auto& variant : kVariants) {
    s::ModelParams p;
    p.coriolis = 1e-4;
    p.drag = 1e-5;
    p.nonlinear = variant.nonlinear;
    p.viscosity = variant.viscosity;
    p.boundary = bc;
    s::State st = poly_state(40, 32);
    if (bc != s::BoundaryKind::open) s::apply_boundary(st, bc);
    s::Stepper stepper(st.grid, p);
    if (pool) stepper.set_thread_pool(pool.get());
    stepper.run(st, 2.0, 10);
    report += state_line(variant.name, st);
  }
  return report;
}

/// The two-sibling nested scenario, optionally with pool + band budget
/// (crossover 1 forces row bands even on the small proxy domains, mixing
/// sibling-level and band-level parallelism).
std::string run_nested(int threads = -1) {
  if (threads < 0) threads = env_threads();
  std::unique_ptr<nestwx::util::ThreadPool> pool;
  if (threads > 0)
    pool = std::make_unique<nestwx::util::ThreadPool>(threads);
  s::ModelParams p;
  p.coriolis = 1e-4;
  p.viscosity = 40.0;
  p.boundary = s::BoundaryKind::wall;
  n::NestedSimulation sim(poly_state(48, 40), p,
                          {n::NestSpec{"west", 6, 6, 10, 8, 2},
                           n::NestSpec{"east", 30, 24, 10, 10, 3}});
  if (pool) {
    sim.set_thread_pool(pool.get());
    n::NestedSimulation::ThreadBudget budget;
    budget.band_crossover_rows = 1;
    sim.set_thread_budget(budget);
  }
  sim.run(2.0, 4);
  std::string report = state_line("parent", sim.parent());
  report += state_line("west", sim.sibling(0).state());
  report += state_line("east", sim.sibling(1).state());
  return report;
}

std::string golden_path(const std::string& name) {
  return std::string(NESTWX_GOLDEN_DIR) + "/" + name;
}

void check_golden(const std::string& name, const std::string& actual) {
  // Bit-exactness is only promised by the exact tiers (scalar and
  // NESTWX_SIMD with fast-math OFF). The NESTWX_FASTMATH tier reassociates
  // floating point and is gated by its own tolerance-based goldens
  // (test_swm_fastmath_golden, tests/golden/swm_fastmath_*).
  if (s::build_tier().fastmath)
    GTEST_SKIP() << "fast-math tier: covered by test_swm_fastmath_golden";
  const std::string path = golden_path(name);
  if (std::getenv("NESTWX_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_LOG_(INFO) << "regenerated " << path;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run with NESTWX_REGEN_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "state drifted from " << path << "; the kernels are required to be"
      << " bit-identical to the pre-fast-path reference";
}

}  // namespace

TEST(SwmGolden, PeriodicVariants) {
  check_golden("swm_steps_periodic.txt", run_variants(s::BoundaryKind::periodic));
}

TEST(SwmGolden, WallVariants) {
  check_golden("swm_steps_wall.txt", run_variants(s::BoundaryKind::wall));
}

TEST(SwmGolden, ChannelVariants) {
  check_golden("swm_steps_channel.txt", run_variants(s::BoundaryKind::channel));
}

TEST(SwmGolden, OpenVariants) {
  // Outermost-domain `open` boundary: ghosts stay prescribed (their
  // initial values) through every RK3 stage.
  check_golden("swm_steps_open.txt", run_variants(s::BoundaryKind::open));
}

TEST(SwmGolden, NestedTwoSiblings) {
  // Two well-separated siblings: sibling integration order (and, post
  // fast-path, sequential-vs-concurrent execution) must not change a bit.
  check_golden("swm_nested.txt", run_nested());
}

/// Row-band-parallel stepping against the same goldens at 1, 2 and 8
/// threads, across all five scenarios (four outer boundary kinds + the
/// two-sibling nested run, which also mixes sibling-level with
/// band-level parallelism via a crossover-1 budget). Band decomposition
/// only reorders independent writes, so every fingerprint must match the
/// serial goldens exactly.
TEST(SwmGoldenParallel, AllScenariosBitIdenticalAt128Threads) {
  for (const int threads : {1, 2, 8}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    check_golden("swm_steps_periodic.txt",
                 run_variants(s::BoundaryKind::periodic, threads));
    check_golden("swm_steps_wall.txt",
                 run_variants(s::BoundaryKind::wall, threads));
    check_golden("swm_steps_channel.txt",
                 run_variants(s::BoundaryKind::channel, threads));
    check_golden("swm_steps_open.txt",
                 run_variants(s::BoundaryKind::open, threads));
    check_golden("swm_nested.txt", run_nested(threads));
  }
}

/// Virtual-time primitives behind the campaign service: the monotonic
/// clock and the deterministic event queue. The queue's pop order —
/// (time, tier, insertion seq) — is what makes a service drain a pure
/// function of its inputs, so the total order is pinned here exactly.

#include "util/virtual_clock.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace u = nestwx::util;

TEST(VirtualClock, StartsAtZeroAndAdvances) {
  u::VirtualClock clock;
  EXPECT_EQ(clock.now(), 0.0);
  clock.advance_to(1.5);
  EXPECT_EQ(clock.now(), 1.5);
  clock.advance_to(7.0);
  EXPECT_EQ(clock.now(), 7.0);
}

TEST(VirtualClock, EqualTimeIsAllowed) {
  // Simultaneous events all observe the same now().
  u::VirtualClock clock;
  clock.advance_to(3.0);
  EXPECT_NO_THROW(clock.advance_to(3.0));
  EXPECT_EQ(clock.now(), 3.0);
}

TEST(VirtualClock, RefusesToMoveBackwards) {
  u::VirtualClock clock;
  clock.advance_to(10.0);
  EXPECT_THROW(clock.advance_to(9.999), u::InvariantError);
}

TEST(VirtualClock, ResetReturnsToZero) {
  u::VirtualClock clock;
  clock.advance_to(42.0);
  clock.reset();
  EXPECT_EQ(clock.now(), 0.0);
  EXPECT_NO_THROW(clock.advance_to(1.0));
}

TEST(EventQueue, PopsInTimeOrder) {
  u::EventQueue<int> q;
  q.push(3.0, 0, 30);
  q.push(1.0, 0, 10);
  q.push(2.0, 0, 20);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().payload, 10);
  EXPECT_EQ(q.pop().payload, 20);
  EXPECT_EQ(q.pop().payload, 30);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TierBreaksTimeTies) {
  // The service pushes completions at tier 0 and arrivals at tier 1 so a
  // completion at time t frees the machine before an arrival at the same
  // t sizes up the queue. Push in the opposite order to prove ordering
  // comes from the tier, not insertion.
  u::EventQueue<std::string> q;
  q.push(5.0, 1, std::string("arrival"));
  q.push(5.0, 0, std::string("completion"));
  EXPECT_EQ(q.pop().payload, "completion");
  EXPECT_EQ(q.pop().payload, "arrival");
}

TEST(EventQueue, InsertionOrderBreaksRemainingTies) {
  u::EventQueue<int> q;
  for (int i = 0; i < 8; ++i) q.push(1.0, 0, i);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(q.pop().payload, i);
}

TEST(EventQueue, TopPeeksWithoutPopping) {
  u::EventQueue<int> q;
  q.push(2.0, 0, 2);
  q.push(1.0, 0, 1);
  EXPECT_EQ(q.top().payload, 1);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().payload, 1);
}

TEST(EventQueue, InterleavedPushPopKeepsTotalOrder) {
  // Mimic the drain loop: pops interleave with pushes (completions are
  // scheduled mid-drain). Whatever is in the queue must still come out in
  // (time, tier, seq) order.
  u::EventQueue<int> q;
  q.push(10.0, 1, 100);
  q.push(4.0, 1, 40);
  EXPECT_EQ(q.pop().payload, 40);
  q.push(6.0, 0, 60);   // completion scheduled while serving
  q.push(6.0, 1, 61);   // arrival at the same instant
  q.push(2.0, 1, 20);   // late push of an earlier time still wins
  EXPECT_EQ(q.pop().payload, 20);
  EXPECT_EQ(q.pop().payload, 60);
  EXPECT_EQ(q.pop().payload, 61);
  EXPECT_EQ(q.pop().payload, 100);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, RandomisedDrainMatchesReferenceSort) {
  // Heap vs reference: push a few hundred random events, pop them all,
  // and check the sequence equals a stable sort by (time, tier, seq).
  u::Rng rng(17);
  u::EventQueue<std::size_t> q;
  struct Ref {
    double time;
    int tier;
    std::size_t idx;
  };
  std::vector<Ref> ref;
  for (std::size_t i = 0; i < 300; ++i) {
    // Coarse times force plenty of ties through the tier/seq levels.
    const double t = static_cast<double>(rng.uniform_int(0, 20));
    const int tier = static_cast<int>(rng.uniform_int(0, 1));
    q.push(t, tier, i);
    ref.push_back({t, tier, i});
  }
  std::stable_sort(ref.begin(), ref.end(), [](const Ref& a, const Ref& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.tier != b.tier) return a.tier < b.tier;
    return a.idx < b.idx;  // seq == insertion index here
  });
  for (const Ref& r : ref) {
    const auto e = q.pop();
    EXPECT_EQ(e.payload, r.idx);
    EXPECT_EQ(e.time, r.time);
    EXPECT_EQ(e.tier, r.tier);
  }
  EXPECT_TRUE(q.empty());
}

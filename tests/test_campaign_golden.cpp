/// Golden-file regression tests for the nestwx-campaign JSON report, with
/// and without fault injection. The reports are pure functions of their
/// inputs (virtual time only, no wall clock, no thread count), so they
/// must match the checked-in goldens byte for byte; any diff is a real
/// schema or semantics change and the goldens must be regenerated
/// deliberately:
///
///   NESTWX_REGEN_GOLDEN=1 ./test_campaign_golden

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "fault/fault_plan.hpp"
#include "fault/recovery.hpp"
#include "util/rng.hpp"
#include "workload/configs.hpp"
#include "workload/machines.hpp"

namespace cg = nestwx::campaign;
namespace c = nestwx::core;
namespace f = nestwx::fault;
namespace w = nestwx::workload;
namespace u = nestwx::util;

namespace {

std::shared_ptr<const c::PerfModel> shared_model(int cores) {
  static std::map<int, std::shared_ptr<const c::PerfModel>> cache;
  auto& slot = cache[cores];
  if (!slot) {
    slot = std::make_shared<c::DelaunayPerfModel>(
        c::DelaunayPerfModel::fit(nestwx::wrfsim::profile_basis(
            w::bluegene_l(cores), c::default_basis_domains())));
  }
  return slot;
}

std::vector<cg::MemberSpec> golden_ensemble() {
  u::Rng rng(99);
  const auto configs = w::random_configs(rng, 4);
  std::vector<cg::MemberSpec> members;
  for (int i = 0; i < 4; ++i) {
    cg::MemberSpec spec;
    spec.name = "member" + std::to_string(i);
    spec.config = configs[static_cast<std::size_t>(i)];
    spec.iterations = 20;
    members.push_back(std::move(spec));
  }
  return members;
}

std::string golden_path(const std::string& name) {
  return std::string(NESTWX_GOLDEN_DIR) + "/" + name;
}

/// Compare against the golden, or rewrite it when NESTWX_REGEN_GOLDEN is
/// set. Comparison is byte-for-byte: the reports promise determinism down
/// to the last %.12g digit.
void check_golden(const std::string& name, const std::string& actual) {
  const std::string path = golden_path(name);
  if (std::getenv("NESTWX_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_LOG_(INFO) << "regenerated " << path;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run with NESTWX_REGEN_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "report drifted from " << path
      << "; if intentional, regenerate with NESTWX_REGEN_GOLDEN=1";
}

}  // namespace

TEST(CampaignGolden, ReportWithoutFaults) {
  const auto machine = w::bluegene_l(256);
  cg::CampaignScheduler scheduler(machine, shared_model(256));
  cg::CampaignOptions options;
  options.threads = 2;
  const auto report = scheduler.run(golden_ensemble(), options);
  check_golden("campaign_report.json",
               cg::report_to_json(report, machine, options));
}

TEST(CampaignGolden, ReportWithFaults) {
  const auto machine = w::bluegene_l(256);
  // A fresh scheduler: cache contents influence cache_hit flags, and the
  // golden pins the cold-cache outcome.
  cg::CampaignScheduler scheduler(machine, shared_model(256));
  cg::CampaignOptions options;
  options.threads = 2;
  f::FaultOptions faults;
  faults.checkpoint_every = 5;
  faults.plan = f::FaultPlan::parse("30:node:0:0;45:link:5:2:y");
  const auto report =
      f::run_with_faults(scheduler, golden_ensemble(), options, faults);
  check_golden("campaign_report_faults.json",
               f::report_to_json(report, machine, options, faults));
}

/// Property-based tests for campaign/space_share: across a seeded sweep of
/// member counts and weight distributions, the partition must (a) be
/// pairwise disjoint, (b) stay inside and exactly tile the requested face,
/// (c) give every member an area within about one face row/column of its
/// weight-proportional share, and (d) lay campaigns out in exactly the
/// wave pattern --max-concurrent requests.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/space_share.hpp"
#include "core/perf_model.hpp"
#include "procgrid/rect.hpp"
#include "util/rng.hpp"
#include "workload/configs.hpp"
#include "workload/machines.hpp"
#include "wrfsim/driver.hpp"

namespace cg = nestwx::campaign;
namespace c = nestwx::core;
namespace w = nestwx::workload;
namespace u = nestwx::util;
using nestwx::procgrid::Rect;
using nestwx::procgrid::overlaps;

namespace {

struct ShareCase {
  std::string name;
  int cores = 256;
  int members = 4;
  std::uint64_t seed = 1;
  double weight_lo = 0.5;
  double weight_hi = 4.0;
  Rect face;  ///< empty → the whole torus X-Y face
};

std::string case_name(const testing::TestParamInfo<ShareCase>& info) {
  return info.param.name;
}

std::vector<double> random_weights(const ShareCase& sc) {
  u::Rng rng(sc.seed);
  std::vector<double> weights(static_cast<std::size_t>(sc.members));
  for (auto& v : weights) v = rng.uniform(sc.weight_lo, sc.weight_hi);
  return weights;
}

}  // namespace

class SpaceShareProperty : public testing::TestWithParam<ShareCase> {
 protected:
  nestwx::topo::MachineParams machine_ = w::bluegene_l(GetParam().cores);
  Rect face_ = GetParam().face.empty()
                   ? Rect{0, 0, machine_.torus_x, machine_.torus_y}
                   : GetParam().face;
  std::vector<double> weights_ = random_weights(GetParam());
  std::vector<cg::SubMachine> subs_ =
      cg::share_machine(machine_, face_, weights_);
};

TEST_P(SpaceShareProperty, PartitionsAreDisjoint) {
  ASSERT_EQ(subs_.size(), weights_.size());
  for (std::size_t i = 0; i < subs_.size(); ++i)
    for (std::size_t j = i + 1; j < subs_.size(); ++j)
      EXPECT_FALSE(overlaps(subs_[i].rect, subs_[j].rect))
          << "members " << i << " and " << j << " overlap: "
          << subs_[i].rect.to_string() << " vs " << subs_[j].rect.to_string();
}

TEST_P(SpaceShareProperty, PartitionsStayInsideAndTileTheFace) {
  long long covered = 0;
  for (const auto& sub : subs_) {
    EXPECT_FALSE(sub.rect.empty());
    EXPECT_TRUE(face_.contains(sub.rect))
        << sub.rect.to_string() << " escapes " << face_.to_string();
    covered += sub.rect.area();
  }
  // Disjoint (previous property) + total area == face area ⇒ exact tiling,
  // so coverage can never exceed the face.
  EXPECT_EQ(covered, face_.area());
}

TEST_P(SpaceShareProperty, AreasTrackWeightProportions) {
  double total_weight = 0.0;
  for (double v : weights_) total_weight += v;
  // Integer rectangles cannot match real-valued shares exactly; the
  // Huffman splitter rounds each binary cut to a grid line, which costs at
  // most about one row or column of the face at every split.
  const double tolerance = std::max(face_.w, face_.h);
  for (std::size_t i = 0; i < subs_.size(); ++i) {
    const double ideal = face_.area() * weights_[i] / total_weight;
    EXPECT_NEAR(static_cast<double>(subs_[i].rect.area()), ideal, tolerance)
        << "member " << i << " got " << subs_[i].rect.area()
        << " cells for an ideal share of " << ideal;
  }
}

TEST_P(SpaceShareProperty, SubMachinesMatchTheirRectangles) {
  for (const auto& sub : subs_) {
    EXPECT_EQ(sub.machine.torus_x, sub.rect.w);
    EXPECT_EQ(sub.machine.torus_y, sub.rect.h);
    EXPECT_EQ(sub.machine.torus_z, machine_.torus_z);
    EXPECT_TRUE(sub.machine.health.all_healthy());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpaceShareProperty,
    testing::Values(
        ShareCase{"two_members", 256, 2, 11},
        ShareCase{"four_members", 256, 4, 12},
        ShareCase{"seven_members", 256, 7, 13},
        ShareCase{"sixteen_members", 1024, 16, 14},
        ShareCase{"skewed_weights", 1024, 8, 15, 0.1, 50.0},
        ShareCase{"near_equal_weights", 1024, 8, 16, 0.99, 1.01},
        // At exact face capacity every member needs a 1x1 cell, which the
        // splitter can only realise when the weights are close to equal.
        ShareCase{"face_capacity", 256, 32, 17, 0.9, 1.1},
        ShareCase{"sub_face", 4096, 6, 18, 0.5, 4.0, Rect{2, 1, 10, 6}},
        ShareCase{"narrow_face", 4096, 5, 19, 0.5, 4.0, Rect{0, 0, 16, 2}}),
    case_name);

// ---------- Wave layout vs --max-concurrent ----------

namespace {

std::shared_ptr<const c::PerfModel> shared_model(int cores) {
  static std::map<int, std::shared_ptr<const c::PerfModel>> cache;
  auto& slot = cache[cores];
  if (!slot) {
    slot = std::make_shared<c::DelaunayPerfModel>(
        c::DelaunayPerfModel::fit(nestwx::wrfsim::profile_basis(
            w::bluegene_l(cores), c::default_basis_domains())));
  }
  return slot;
}

}  // namespace

TEST(CampaignWaves, CountsMatchMaxConcurrent) {
  const auto machine = w::bluegene_l(256);
  u::Rng rng(7);
  const auto configs = w::random_configs(rng, 5);
  std::vector<cg::MemberSpec> members;
  for (int i = 0; i < 10; ++i) {
    cg::MemberSpec spec;
    spec.name = "m" + std::to_string(i);
    spec.config = configs[static_cast<std::size_t>(i % 5)];
    spec.iterations = 10;
    members.push_back(std::move(spec));
  }

  for (int cap : {1, 2, 3, 4, 10}) {
    cg::CampaignScheduler scheduler(machine, shared_model(256));
    cg::CampaignOptions options;
    options.threads = 1;
    options.max_concurrent = cap;
    const auto report = scheduler.run(members, options);

    const int expected_waves =
        (static_cast<int>(members.size()) + cap - 1) / cap;
    EXPECT_EQ(report.metrics.waves, expected_waves) << "cap " << cap;

    std::vector<int> per_wave(static_cast<std::size_t>(expected_waves), 0);
    for (std::size_t i = 0; i < report.members.size(); ++i) {
      const auto& m = report.members[i];
      ASSERT_GE(m.wave, 0);
      ASSERT_LT(m.wave, expected_waves);
      // Input order maps onto waves greedily.
      EXPECT_EQ(m.wave, static_cast<int>(i) / cap);
      ++per_wave[static_cast<std::size_t>(m.wave)];
    }
    for (int count : per_wave) EXPECT_LE(count, cap);
  }
}

TEST(CampaignWaves, ZeroMeansFaceLimited) {
  const auto machine = w::bluegene_l(256);  // 8x4 face: 32 slots
  u::Rng rng(9);
  const auto configs = w::random_configs(rng, 3);
  std::vector<cg::MemberSpec> members;
  for (int i = 0; i < 6; ++i) {
    cg::MemberSpec spec;
    spec.name = "m" + std::to_string(i);
    spec.config = configs[static_cast<std::size_t>(i % 3)];
    spec.iterations = 10;
    members.push_back(std::move(spec));
  }
  cg::CampaignScheduler scheduler(machine, shared_model(256));
  cg::CampaignOptions options;
  options.threads = 1;
  options.max_concurrent = 0;
  const auto report = scheduler.run(members, options);
  EXPECT_EQ(report.metrics.waves, 1);
  for (const auto& m : report.members) EXPECT_EQ(m.wave, 0);
}

#include "wrfsim/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "workload/configs.hpp"
#include "workload/machines.hpp"

namespace c = nestwx::core;
namespace w = nestwx::workload;
namespace ws = nestwx::wrfsim;

namespace {
struct Fixture {
  nestwx::topo::MachineParams machine = w::bluegene_l(256);
  c::DelaunayPerfModel model = c::DelaunayPerfModel::fit(
      ws::profile_basis(machine, c::default_basis_domains()));
  c::NestedConfig cfg = w::table2_config();

  std::string write(c::Strategy strategy, int iterations = 2) {
    const auto plan = c::plan_execution(machine, cfg, model, strategy,
                                        c::Allocator::huffman,
                                        c::MapScheme::txyz);
    const auto result = ws::simulate_run(machine, cfg, plan);
    const std::string path = ::testing::TempDir() + "nestwx_trace.json";
    ws::write_trace_json(path, cfg, plan, result, iterations);
    std::ifstream f(path);
    std::stringstream ss;
    ss << f.rdbuf();
    std::remove(path.c_str());
    return ss.str();
  }
};
}  // namespace

TEST(Trace, ContainsLanesForParentAndEverySibling) {
  Fixture fx;
  const auto json = fx.write(c::Strategy::concurrent);
  EXPECT_NE(json.find("parent 286x307"), std::string::npos);
  for (const auto& sib : fx.cfg.siblings)
    EXPECT_NE(json.find(sib.name), std::string::npos) << sib.name;
}

TEST(Trace, ConcurrentShowsSiblingIdleLanes) {
  Fixture fx;
  const auto json = fx.write(c::Strategy::concurrent);
  EXPECT_NE(json.find("wait for siblings"), std::string::npos);
}

TEST(Trace, SequentialHasNoIdleLanes) {
  Fixture fx;
  const auto json = fx.write(c::Strategy::sequential);
  EXPECT_EQ(json.find("wait for siblings"), std::string::npos);
  EXPECT_NE(json.find("integrate"), std::string::npos);
}

TEST(Trace, EventCountScalesWithIterations) {
  Fixture fx;
  const auto one = fx.write(c::Strategy::concurrent, 1);
  const auto three = fx.write(c::Strategy::concurrent, 3);
  auto count = [](const std::string& s, const std::string& needle) {
    int n = 0;
    for (auto pos = s.find(needle); pos != std::string::npos;
         pos = s.find(needle, pos + 1))
      ++n;
    return n;
  };
  EXPECT_EQ(count(three, "parent step"), 3 * count(one, "parent step"));
}

TEST(Trace, ProducesParseableJsonShape) {
  // Not a full JSON parser — check bracket balance and the required keys.
  Fixture fx;
  const auto json = fx.write(c::Strategy::concurrent);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
}

TEST(Trace, RejectsBadArguments) {
  Fixture fx;
  const auto plan = c::plan_execution(fx.machine, fx.cfg, fx.model,
                                      c::Strategy::concurrent);
  const auto result = ws::simulate_run(fx.machine, fx.cfg, plan);
  EXPECT_THROW(ws::write_trace_json("/nonexistent-dir/x.json", fx.cfg,
                                    plan, result),
               nestwx::util::PreconditionError);
  EXPECT_THROW(ws::write_trace_json(::testing::TempDir() + "t.json",
                                    fx.cfg, plan, result, 0),
               nestwx::util::PreconditionError);
}

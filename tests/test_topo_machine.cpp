#include "topo/machine.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace t = nestwx::topo;
using nestwx::util::PreconditionError;

TEST(NodeMode, RanksPerNode) {
  EXPECT_EQ(t::ranks_per_node(t::NodeMode::coprocessor, 2), 1);
  EXPECT_EQ(t::ranks_per_node(t::NodeMode::smp, 4), 1);
  EXPECT_EQ(t::ranks_per_node(t::NodeMode::dual, 4), 2);
  EXPECT_EQ(t::ranks_per_node(t::NodeMode::virtual_node, 2), 2);
  EXPECT_EQ(t::ranks_per_node(t::NodeMode::virtual_node, 4), 4);
}

TEST(NodeMode, DualNeedsTwoCores) {
  EXPECT_THROW(t::ranks_per_node(t::NodeMode::dual, 1), PreconditionError);
  EXPECT_THROW(t::ranks_per_node(t::NodeMode::smp, 0), PreconditionError);
}

TEST(MachineParams, TotalRanksCombinesGeometryAndMode) {
  t::MachineParams m;
  m.torus_x = 8;
  m.torus_y = 8;
  m.torus_z = 8;
  m.cores_per_node = 2;
  m.mode = t::NodeMode::virtual_node;
  EXPECT_EQ(m.total_ranks(), 1024);
  m.mode = t::NodeMode::coprocessor;
  EXPECT_EQ(m.total_ranks(), 512);
}

TEST(MachineParams, TorusMatchesDims) {
  t::MachineParams m;
  m.torus_x = 4;
  m.torus_y = 2;
  m.torus_z = 3;
  const auto torus = m.torus();
  EXPECT_EQ(torus.dx(), 4);
  EXPECT_EQ(torus.dy(), 2);
  EXPECT_EQ(torus.dz(), 3);
  EXPECT_EQ(torus.node_count(), 24);
}

#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/error.hpp"

namespace f = nestwx::fault;
using nestwx::util::PreconditionError;

TEST(FaultPlan, ParsesNodeAndLinkEvents) {
  const auto plan = f::FaultPlan::parse("120.5:node:3:4;200:link:0:2:y");
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_DOUBLE_EQ(plan.events[0].time, 120.5);
  EXPECT_EQ(plan.events[0].kind, f::FaultKind::node);
  EXPECT_EQ(plan.events[0].x, 3);
  EXPECT_EQ(plan.events[0].y, 4);
  EXPECT_EQ(plan.events[1].kind, f::FaultKind::link);
  EXPECT_EQ(plan.events[1].axis, 1);
}

TEST(FaultPlan, ParseSortsByTime) {
  const auto plan = f::FaultPlan::parse("300:node:1:1;100:node:2:2");
  ASSERT_EQ(plan.events.size(), 2u);
  EXPECT_DOUBLE_EQ(plan.events[0].time, 100.0);
  EXPECT_DOUBLE_EQ(plan.events[1].time, 300.0);
}

TEST(FaultPlan, ToStringRoundTrips) {
  const auto plan = f::FaultPlan::parse("50:node:1:2;75.25:link:3:0:x");
  const auto replayed = f::FaultPlan::parse(plan.to_string());
  EXPECT_EQ(plan.events, replayed.events);
  EXPECT_EQ(plan.fingerprint(), replayed.fingerprint());
}

TEST(FaultPlan, RejectsMalformedScripts) {
  EXPECT_THROW(f::FaultPlan::parse("abc"), PreconditionError);
  EXPECT_THROW(f::FaultPlan::parse("10:node:1"), PreconditionError);
  EXPECT_THROW(f::FaultPlan::parse("10:melt:1:2"), PreconditionError);
  EXPECT_THROW(f::FaultPlan::parse("10:node:1:2:x"), PreconditionError);
  EXPECT_THROW(f::FaultPlan::parse("10:link:1:2"), PreconditionError);
  EXPECT_THROW(f::FaultPlan::parse("10:link:1:2:z"), PreconditionError);
  EXPECT_THROW(f::FaultPlan::parse("10:node:one:2"), PreconditionError);
  EXPECT_THROW(f::FaultPlan::parse("10x:node:1:2"), PreconditionError);
}

TEST(FaultPlan, EmptyScriptIsEmptyPlan) {
  EXPECT_TRUE(f::FaultPlan::parse("").empty());
  EXPECT_EQ(f::FaultPlan{}.to_string(), "");
}

TEST(FaultPlan, ValidateChecksFaceBounds) {
  const auto plan = f::FaultPlan::parse("10:node:7:3");
  EXPECT_NO_THROW(plan.validate(8, 4));
  EXPECT_THROW(plan.validate(7, 4), PreconditionError);
  EXPECT_THROW(plan.validate(8, 3), PreconditionError);

  const auto negative = f::FaultPlan::parse("-5:node:0:0");
  EXPECT_THROW(negative.validate(8, 4), PreconditionError);
}

TEST(FaultPlan, RandomIsDeterministicInTheSeed) {
  const auto a = f::FaultPlan::random(42, 16, 1000.0, 8, 8);
  const auto b = f::FaultPlan::random(42, 16, 1000.0, 8, 8);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());

  const auto c = f::FaultPlan::random(43, 16, 1000.0, 8, 8);
  EXPECT_NE(a.events, c.events);
}

TEST(FaultPlan, RandomRespectsBoundsAndOrdering) {
  const auto plan = f::FaultPlan::random(7, 64, 500.0, 8, 4);
  ASSERT_EQ(plan.events.size(), 64u);
  EXPECT_NO_THROW(plan.validate(8, 4));
  EXPECT_TRUE(std::is_sorted(
      plan.events.begin(), plan.events.end(),
      [](const auto& a, const auto& b) { return a.time < b.time; }));
  for (const auto& e : plan.events) {
    EXPECT_GE(e.time, 0.0);
    EXPECT_LT(e.time, 500.0);
    if (e.kind == f::FaultKind::node) EXPECT_EQ(e.axis, 0);
  }
}

TEST(FaultPlan, RandomLinkFractionExtremes) {
  const auto nodes = f::FaultPlan::random(1, 32, 100.0, 8, 8, 0.0);
  for (const auto& e : nodes.events) EXPECT_EQ(e.kind, f::FaultKind::node);
  const auto links = f::FaultPlan::random(1, 32, 100.0, 8, 8, 1.0);
  for (const auto& e : links.events) EXPECT_EQ(e.kind, f::FaultKind::link);
}

TEST(FaultPlan, RandomRejectsBadArguments) {
  EXPECT_THROW(f::FaultPlan::random(1, -1, 100.0, 8, 8), PreconditionError);
  EXPECT_THROW(f::FaultPlan::random(1, 4, 0.0, 8, 8), PreconditionError);
  EXPECT_THROW(f::FaultPlan::random(1, 4, 100.0, 0, 8), PreconditionError);
  EXPECT_THROW(f::FaultPlan::random(1, 4, 100.0, 8, 8, 1.5),
               PreconditionError);
}

TEST(FaultPlan, FingerprintDiscriminates) {
  const auto a = f::FaultPlan::parse("10:node:1:2");
  const auto b = f::FaultPlan::parse("10:node:2:1");
  const auto c = f::FaultPlan::parse("10:link:1:2:x");
  EXPECT_NE(a.fingerprint(), b.fingerprint());
  EXPECT_NE(a.fingerprint(), c.fingerprint());
  EXPECT_NE(a.fingerprint(), f::FaultPlan{}.fingerprint());
}

#include "util/cli.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace u = nestwx::util;

namespace {
u::Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), args.begin(), args.end());
  return u::Cli(static_cast<int>(v.size()), v.data());
}
}  // namespace

TEST(Cli, EqualsForm) {
  const auto c = make({"--cores=1024"});
  EXPECT_EQ(c.get_int("cores", 0), 1024);
}

TEST(Cli, SpaceForm) {
  const auto c = make({"--machine", "bgp"});
  EXPECT_EQ(c.get("machine", ""), "bgp");
}

TEST(Cli, BooleanFlag) {
  const auto c = make({"--verbose"});
  EXPECT_TRUE(c.get_bool("verbose", false));
  EXPECT_FALSE(c.get_bool("quiet", false));
}

TEST(Cli, BooleanExplicitValues) {
  EXPECT_TRUE(make({"--x=true"}).get_bool("x", false));
  EXPECT_TRUE(make({"--x=1"}).get_bool("x", false));
  EXPECT_FALSE(make({"--x=false"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=0"}).get_bool("x", true));
  EXPECT_THROW(make({"--x=maybe"}).get_bool("x", true),
               u::PreconditionError);
}

TEST(Cli, DoubleParsing) {
  EXPECT_DOUBLE_EQ(make({"--f=2.5"}).get_double("f", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(make({}).get_double("f", 1.25), 1.25);
  EXPECT_THROW(make({"--f=abc"}).get_double("f", 0.0), u::PreconditionError);
}

TEST(Cli, IntRejectsGarbage) {
  EXPECT_THROW(make({"--n=12x"}).get_int("n", 0), u::PreconditionError);
}

TEST(Cli, PositionalArgumentsPreserved) {
  const auto c = make({"one", "--k=v", "two"});
  ASSERT_EQ(c.positional().size(), 2u);
  EXPECT_EQ(c.positional()[0], "one");
  EXPECT_EQ(c.positional()[1], "two");
}

TEST(Cli, FallbacksWhenAbsent) {
  const auto c = make({});
  EXPECT_EQ(c.get("missing", "dflt"), "dflt");
  EXPECT_EQ(c.get_int("missing", 7), 7);
  EXPECT_FALSE(c.has("missing"));
}

TEST(Cli, ProgramNameCaptured) {
  const auto c = make({});
  EXPECT_EQ(c.program(), "prog");
}

TEST(Cli, TrailingValueFlagBecomesBoolean) {
  // "--flag" at end with no value is a boolean, not an error.
  const auto c = make({"--flag"});
  EXPECT_TRUE(c.has("flag"));
  EXPECT_EQ(c.get("flag", "x"), "");
}

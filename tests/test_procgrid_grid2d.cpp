#include "procgrid/grid2d.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace p = nestwx::procgrid;
using nestwx::util::PreconditionError;

TEST(Grid2D, RowMajorRankLayout) {
  const p::Grid2D g(4, 3);
  EXPECT_EQ(g.rank(0, 0), 0);
  EXPECT_EQ(g.rank(3, 0), 3);
  EXPECT_EQ(g.rank(0, 1), 4);
  EXPECT_EQ(g.rank(3, 2), 11);
}

TEST(Grid2D, CoordinateRoundTrip) {
  const p::Grid2D g(5, 7);
  for (int r = 0; r < g.size(); ++r)
    EXPECT_EQ(g.rank(g.x_of(r), g.y_of(r)), r);
}

TEST(Grid2D, NeighborsAtInterior) {
  const p::Grid2D g(4, 4);
  const int r = g.rank(1, 1);
  EXPECT_EQ(g.neighbor(r, p::Side::west), g.rank(0, 1));
  EXPECT_EQ(g.neighbor(r, p::Side::east), g.rank(2, 1));
  EXPECT_EQ(g.neighbor(r, p::Side::south), g.rank(1, 0));
  EXPECT_EQ(g.neighbor(r, p::Side::north), g.rank(1, 2));
  EXPECT_EQ(g.neighbors(r).size(), 4u);
}

TEST(Grid2D, NeighborsAtBoundaryAreAbsent) {
  const p::Grid2D g(4, 4);
  EXPECT_FALSE(g.neighbor(g.rank(0, 0), p::Side::west).has_value());
  EXPECT_FALSE(g.neighbor(g.rank(0, 0), p::Side::south).has_value());
  EXPECT_EQ(g.neighbors(g.rank(0, 0)).size(), 2u);   // corner
  EXPECT_EQ(g.neighbors(g.rank(1, 0)).size(), 3u);   // edge
}

TEST(Grid2D, SingleColumnAndRow) {
  const p::Grid2D col(1, 5);
  EXPECT_FALSE(col.neighbor(2, p::Side::west).has_value());
  EXPECT_FALSE(col.neighbor(2, p::Side::east).has_value());
  EXPECT_TRUE(col.neighbor(2, p::Side::north).has_value());
  const p::Grid2D row(5, 1);
  EXPECT_EQ(row.neighbors(2).size(), 2u);
}

TEST(Grid2D, RejectsBadInputs) {
  EXPECT_THROW(p::Grid2D(0, 3), PreconditionError);
  const p::Grid2D g(2, 2);
  EXPECT_THROW(g.rank(2, 0), PreconditionError);
  EXPECT_THROW(g.x_of(4), PreconditionError);
}

TEST(FactorPairs, CompleteAndOrdered) {
  const auto f12 = p::factor_pairs(12);
  ASSERT_EQ(f12.size(), 6u);
  EXPECT_EQ(f12.front()[0], 1);
  EXPECT_EQ(f12.back()[0], 12);
  for (const auto& [a, b] : f12) EXPECT_EQ(a * b, 12);
}

TEST(FactorPairs, PrimeHasTwo) {
  EXPECT_EQ(p::factor_pairs(13).size(), 2u);
}

TEST(ChooseGrid, SquareCountSquareDomain) {
  const auto g = p::choose_grid(1024, 300, 300);
  EXPECT_EQ(g.px(), 32);
  EXPECT_EQ(g.py(), 32);
}

TEST(ChooseGrid, MatchesDomainAspect) {
  // Wide domain should get more columns than rows.
  const auto g = p::choose_grid(64, 800, 200);
  EXPECT_GT(g.px(), g.py());
  EXPECT_EQ(g.px() * g.py(), 64);
}

TEST(ChooseGrid, PrimeRankCount) {
  const auto g = p::choose_grid(7, 100, 100);
  EXPECT_EQ(g.px() * g.py(), 7);
}

TEST(ChooseGrid, OneRank) {
  const auto g = p::choose_grid(1, 50, 70);
  EXPECT_EQ(g.px(), 1);
  EXPECT_EQ(g.py(), 1);
}

TEST(ChooseGrid, TileAspectIsNearOne) {
  const auto g = p::choose_grid(2048, 925, 850);
  const double tile_aspect =
      (925.0 / g.px()) / (850.0 / g.py());
  EXPECT_GT(tile_aspect, 0.4);
  EXPECT_LT(tile_aspect, 2.5);
}

#include "nest/hierarchy.hpp"
#include "nest/simulation.hpp"

#include <gtest/gtest.h>

#include "swm/diagnostics.hpp"
#include "swm/init.hpp"
#include "util/error.hpp"

namespace n = nestwx::nest;
namespace s = nestwx::swm;

namespace {
s::State root48(double depth = 300.0) {
  s::GridSpec g;
  g.nx = g.ny = 48;
  g.dx = g.dy = 9e3;
  return s::lake_at_rest(g, depth);
}

n::TreeNestSpec tn(const char* name, int parent, int anchor, int cells,
                   int ratio = 3) {
  return n::TreeNestSpec{
      n::NestSpec{name, anchor, anchor, cells, cells, ratio}, parent};
}
}  // namespace

TEST(Hierarchy, BuildsTwoLevels) {
  s::ModelParams p;
  p.boundary = s::BoundaryKind::wall;
  n::HierarchicalSimulation sim(
      root48(), p, {tn("l1", -1, 10, 20), tn("l2", 0, 10, 12)});
  EXPECT_EQ(sim.nest_count(), 2u);
  EXPECT_EQ(sim.level_of(0), 1);
  EXPECT_EQ(sim.level_of(1), 2);
  // Level-2 grid spacing is 9 km / 3 / 3 = 1 km.
  EXPECT_DOUBLE_EQ(sim.nest(1).state().grid.dx, 1e3);
}

TEST(Hierarchy, RejectsForwardParentReference) {
  s::ModelParams p;
  EXPECT_THROW(n::HierarchicalSimulation(
                   root48(), p, {tn("bad", 1, 10, 20), tn("l1", -1, 10, 20)}),
               nestwx::util::PreconditionError);
}

TEST(Hierarchy, QuietStateStaysQuietThroughTwoLevels) {
  s::ModelParams p;
  p.boundary = s::BoundaryKind::wall;
  n::HierarchicalSimulation sim(
      root48(), p, {tn("l1", -1, 10, 20), tn("l2", 0, 10, 12)});
  sim.run(10.0, 6);
  EXPECT_LT(sim.root().u.interior_max_abs(), 1e-9);
  EXPECT_LT(sim.nest(0).state().u.interior_max_abs(), 1e-9);
  EXPECT_LT(sim.nest(1).state().u.interior_max_abs(), 1e-9);
  EXPECT_EQ(sim.steps_taken(), 6);
}

TEST(Hierarchy, SignalReachesInnermostNest) {
  auto root = root48(100.0);
  root.h(5, 24) += 1.5;  // bump outside both nests
  s::ModelParams p;
  p.coriolis = 0.0;
  p.viscosity = 300.0;
  p.boundary = s::BoundaryKind::wall;
  n::HierarchicalSimulation sim(
      std::move(root), p, {tn("l1", -1, 14, 20), tn("l2", 0, 18, 16)});
  const double dt = sim.stable_dt(0.4);
  sim.run(dt, 80);
  ASSERT_TRUE(s::all_finite(sim.nest(1).state()));
  double dev = 0.0;
  const auto& inner = sim.nest(1).state();
  for (int j = 0; j < inner.grid.ny; ++j)
    for (int i = 0; i < inner.grid.nx; ++i)
      dev = std::max(dev, std::abs(inner.h(i, j) - 100.0));
  EXPECT_GT(dev, 1e-4);
}

TEST(Hierarchy, TwoSiblingsWithInnerNestsStayStable) {
  // The paper's §4.1.1 shape: siblings at the second level.
  s::GridSpec g;
  g.nx = g.ny = 64;
  g.dx = g.dy = 13.5e3;
  const double f = 8e-5;
  auto root = s::depression(g, f, 0.3, 0.5, 800.0, 18.0, 250e3);
  s::add_depression(root, f, 0.72, 0.5, 22.0, 220e3);
  s::ModelParams p;
  p.coriolis = f;
  p.viscosity = 2000.0;
  p.boundary = s::BoundaryKind::wall;
  n::HierarchicalSimulation sim(std::move(root), p,
                                {tn("west", -1, 8, 22), tn("east", -1, 34, 22),
                                 tn("west-in", 0, 20, 20),
                                 tn("east-in", 1, 20, 20)});
  EXPECT_EQ(sim.level_of(2), 2);
  const double dt = sim.stable_dt(0.35);
  sim.run(dt, 25);
  for (std::size_t k = 0; k < sim.nest_count(); ++k)
    EXPECT_TRUE(s::all_finite(sim.nest(k).state())) << k;
  EXPECT_TRUE(s::all_finite(sim.root()));
}

TEST(Hierarchy, FeedbackPropagatesUpTwoLevels) {
  // Deepen the depression only via the innermost nest's better
  // resolution; the root's minimum must remain inside the nest chain's
  // footprint after feedback.
  s::GridSpec g;
  g.nx = g.ny = 48;
  g.dx = g.dy = 9e3;
  const double f = 1e-4;
  auto root = s::depression(g, f, 0.5, 0.5, 600.0, 20.0, 60e3);
  s::ModelParams p;
  p.coriolis = f;
  p.boundary = s::BoundaryKind::wall;
  n::HierarchicalSimulation sim(
      std::move(root), p, {tn("mid", -1, 14, 20), tn("in", 0, 20, 16)});
  const double dt = sim.stable_dt(0.4);
  sim.run(dt, 12);
  const auto loc = s::find_min_eta(sim.root());
  EXPECT_GE(loc.i, 14);
  EXPECT_LT(loc.i, 34);
  EXPECT_GE(loc.j, 14);
  EXPECT_LT(loc.j, 34);
}

TEST(Hierarchy, MatchesSingleLevelSimulationWhenFlat) {
  // With only first-level nests, HierarchicalSimulation must agree with
  // NestedSimulation to machine precision.
  auto root_a = root48(200.0);
  root_a.h(24, 24) += 1.0;
  auto root_b = root_a;
  s::ModelParams p;
  p.coriolis = 5e-5;
  p.boundary = s::BoundaryKind::wall;
  n::HierarchicalSimulation hier(std::move(root_a), p,
                                 {tn("a", -1, 10, 16)});
  nestwx::nest::NestedSimulation flat(
      std::move(root_b), p,
      {n::NestSpec{"a", 10, 10, 16, 16, 3}});
  for (int k = 0; k < 5; ++k) {
    hier.advance(8.0);
    flat.advance(8.0);
  }
  for (int j = 0; j < 48; j += 3)
    for (int i = 0; i < 48; i += 3)
      EXPECT_NEAR(hier.root().h(i, j), flat.parent().h(i, j), 1e-11);
}

/// Checkpoint format v2 regression tests: bit-exact round trip and
/// restart, plus the hardening guarantees — every corruption mode
/// (missing, truncated at any section boundary, byte-flipped anywhere,
/// garbled payload of the right length) is rejected with the matching
/// typed error instead of silently seeding a restart with garbage.

#include "iosim/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "swm/dynamics.hpp"
#include "swm/init.hpp"
#include "util/rng.hpp"

namespace io = nestwx::iosim;
namespace s = nestwx::swm;

namespace {

std::string tmp_path(const char* name) {
  return ::testing::TempDir() + name;
}

s::State busy_state() {
  s::GridSpec g;
  g.nx = 40;
  g.ny = 32;
  g.dx = 3e3;
  g.dy = 4e3;
  auto st = s::depression(g, 1e-4, 0.4, 0.6, 500.0, 12.0, 40e3);
  nestwx::util::Rng rng(3);
  s::perturb(st, rng, 0.1);
  s::apply_boundary(st, s::BoundaryKind::periodic);
  return st;
}

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void write_bytes(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
}

std::size_t padded_doubles(int nx, int ny, int halo) {
  return static_cast<std::size_t>(nx + 2 * halo) *
         static_cast<std::size_t>(ny + 2 * halo);
}

}  // namespace

TEST(Checkpoint, RoundTripIsBitExact) {
  const auto st = busy_state();
  const auto path = tmp_path("nestwx_ckpt.bin");
  io::save_checkpoint(st, path);
  const auto back = io::load_checkpoint(path);
  EXPECT_EQ(back.grid.nx, st.grid.nx);
  EXPECT_EQ(back.grid.ny, st.grid.ny);
  EXPECT_EQ(back.grid.halo, st.grid.halo);
  EXPECT_DOUBLE_EQ(back.grid.dx, st.grid.dx);
  for (int j = -st.grid.halo; j < st.grid.ny + st.grid.halo; ++j)
    for (int i = -st.grid.halo; i < st.grid.nx + st.grid.halo; ++i) {
      EXPECT_EQ(back.h(i, j), st.h(i, j));
      EXPECT_EQ(back.b(i, j), st.b(i, j));
    }
  for (int j = 0; j < st.grid.ny; ++j)
    for (int i = 0; i <= st.grid.nx; ++i)
      EXPECT_EQ(back.u(i, j), st.u(i, j));
  std::remove(path.c_str());
}

TEST(Checkpoint, RestartContinuesBitIdentically) {
  // Run 10 steps; checkpoint; run 10 more. Restarting from the
  // checkpoint and running the same 10 steps must match exactly.
  auto st = busy_state();
  s::ModelParams p;
  p.coriolis = 1e-4;
  p.boundary = s::BoundaryKind::periodic;
  s::Stepper stepper(st.grid, p);
  stepper.run(st, 8.0, 10);
  const auto path = tmp_path("nestwx_restart.bin");
  io::save_checkpoint(st, path);
  stepper.run(st, 8.0, 10);

  auto resumed = io::load_checkpoint(path);
  s::Stepper stepper2(resumed.grid, p);
  stepper2.run(resumed, 8.0, 10);
  for (int j = 0; j < st.grid.ny; ++j)
    for (int i = 0; i < st.grid.nx; ++i)
      EXPECT_EQ(resumed.h(i, j), st.h(i, j)) << i << "," << j;
  std::remove(path.c_str());
}

TEST(Checkpoint, WriteLeavesNoTempFile) {
  const auto st = busy_state();
  const auto path = tmp_path("nestwx_atomic.bin");
  io::save_checkpoint(st, path);
  std::ifstream tmp(path + ".tmp", std::ios::binary);
  EXPECT_FALSE(tmp.good()) << "temp file must be renamed away";
  std::remove(path.c_str());
}

TEST(Checkpoint, OverwriteIsAtomic) {
  // Overwriting an existing checkpoint goes through the temp file too, so
  // the destination is always a complete checkpoint.
  const auto st = busy_state();
  const auto path = tmp_path("nestwx_overwrite.bin");
  io::save_checkpoint(st, path);
  io::save_checkpoint(st, path);
  EXPECT_NO_THROW(io::load_checkpoint(path));
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsMissingFile) {
  EXPECT_THROW(io::load_checkpoint("/no/such/ckpt.bin"),
               io::CheckpointMissingError);
}

TEST(Checkpoint, RejectsGarbageFile) {
  const auto path = tmp_path("nestwx_garbage.bin");
  // Long enough to parse as a header; wrong magic.
  write_bytes(path, std::string(200, 'x'));
  EXPECT_THROW(io::load_checkpoint(path), io::CheckpointCorruptError);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsShortHeader) {
  const auto st = busy_state();
  const auto path = tmp_path("nestwx_shorthdr.bin");
  io::save_checkpoint(st, path);
  write_bytes(path, read_bytes(path).substr(0, 20));
  EXPECT_THROW(io::load_checkpoint(path), io::CheckpointTruncatedError);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsTruncationAtEverySectionBoundary) {
  // A file cut exactly at a section boundary is the nastiest truncation:
  // the header parses, the geometry is valid, and pre-v2 loading could
  // read right up to the cut. Every boundary must now be rejected.
  const auto st = busy_state();
  const auto path = tmp_path("nestwx_trunc.bin");
  io::save_checkpoint(st, path);
  const std::string bytes = read_bytes(path);

  const std::size_t header = 56;
  const std::size_t h_bytes =
      padded_doubles(st.grid.nx, st.grid.ny, st.grid.halo) * 8;
  const std::size_t u_bytes =
      padded_doubles(st.grid.nx + 1, st.grid.ny, st.grid.halo) * 8;
  const std::size_t v_bytes =
      padded_doubles(st.grid.nx, st.grid.ny + 1, st.grid.halo) * 8;
  const std::size_t b_bytes = h_bytes;
  ASSERT_EQ(bytes.size(), header + h_bytes + u_bytes + v_bytes + b_bytes);

  const std::vector<std::size_t> boundaries = {
      header,                              // header only, no payload
      header + h_bytes,                    // after h
      header + h_bytes + u_bytes,          // after u
      header + h_bytes + u_bytes + v_bytes,  // after v, b missing
      bytes.size() - 8,                    // one double short of complete
  };
  for (const std::size_t cut : boundaries) {
    write_bytes(path, bytes.substr(0, cut));
    EXPECT_THROW(io::load_checkpoint(path), io::CheckpointTruncatedError)
        << "file truncated at byte " << cut << " must be rejected";
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsGarbledPayloadOfCorrectLength) {
  // Right length, valid header, scrambled field bytes — only the checksum
  // can catch this, and it must.
  const auto st = busy_state();
  const auto path = tmp_path("nestwx_garbled.bin");
  io::save_checkpoint(st, path);
  std::string bytes = read_bytes(path);
  for (std::size_t i = 200; i < 300; ++i) bytes[i] = 'z';
  write_bytes(path, bytes);
  EXPECT_THROW(io::load_checkpoint(path), io::CheckpointCorruptError);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsEveryByteFlip) {
  // Exhaustive single-bit-flip sweep over a small checkpoint: the
  // checksum covers the header prefix and the payload, and the checksum
  // field itself is compared, so no byte in the file may flip silently.
  s::GridSpec g;
  g.nx = 4;
  g.ny = 3;
  g.dx = g.dy = 1e3;
  auto st = s::lake_at_rest(g, 10.0);
  nestwx::util::Rng rng(7);
  s::perturb(st, rng, 0.5);
  const auto path = tmp_path("nestwx_flip.bin");
  const auto flipped = tmp_path("nestwx_flip_mut.bin");
  io::save_checkpoint(st, path);
  const std::string bytes = read_bytes(path);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    std::string mut = bytes;
    mut[i] = static_cast<char>(mut[i] ^ 0x40);
    write_bytes(flipped, mut);
    EXPECT_THROW(io::load_checkpoint(flipped), io::CheckpointError)
        << "flip at byte " << i << " loaded silently";
  }
  std::remove(path.c_str());
  std::remove(flipped.c_str());
}

TEST(Checkpoint, RejectsVersion1Files) {
  // A v1 file (40-byte header, no checksum) must be refused, not
  // misparsed: its version field reads 1.
  const auto st = busy_state();
  const auto path = tmp_path("nestwx_v1.bin");
  io::save_checkpoint(st, path);
  std::string bytes = read_bytes(path);
  bytes[4] = 1;  // version field low byte (little-endian)
  write_bytes(path, bytes);
  EXPECT_THROW(io::load_checkpoint(path), io::CheckpointCorruptError);
  std::remove(path.c_str());
}

TEST(Checkpoint, TypedErrorsShareTheCheckpointBase) {
  // Callers that don't care which failure it was can catch the base.
  try {
    io::load_checkpoint("/no/such/ckpt.bin");
    FAIL() << "expected a throw";
  } catch (const io::CheckpointError&) {
  }
}

#include "iosim/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "swm/dynamics.hpp"
#include "swm/init.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace io = nestwx::iosim;
namespace s = nestwx::swm;
using nestwx::util::PreconditionError;

namespace {
std::string tmp_path(const char* name) {
  return ::testing::TempDir() + name;
}

s::State busy_state() {
  s::GridSpec g;
  g.nx = 40;
  g.ny = 32;
  g.dx = 3e3;
  g.dy = 4e3;
  auto st = s::depression(g, 1e-4, 0.4, 0.6, 500.0, 12.0, 40e3);
  nestwx::util::Rng rng(3);
  s::perturb(st, rng, 0.1);
  s::apply_boundary(st, s::BoundaryKind::periodic);
  return st;
}
}  // namespace

TEST(Checkpoint, RoundTripIsBitExact) {
  const auto st = busy_state();
  const auto path = tmp_path("nestwx_ckpt.bin");
  io::save_checkpoint(st, path);
  const auto back = io::load_checkpoint(path);
  EXPECT_EQ(back.grid.nx, st.grid.nx);
  EXPECT_EQ(back.grid.ny, st.grid.ny);
  EXPECT_EQ(back.grid.halo, st.grid.halo);
  EXPECT_DOUBLE_EQ(back.grid.dx, st.grid.dx);
  for (int j = -st.grid.halo; j < st.grid.ny + st.grid.halo; ++j)
    for (int i = -st.grid.halo; i < st.grid.nx + st.grid.halo; ++i) {
      EXPECT_EQ(back.h(i, j), st.h(i, j));
      EXPECT_EQ(back.b(i, j), st.b(i, j));
    }
  for (int j = 0; j < st.grid.ny; ++j)
    for (int i = 0; i <= st.grid.nx; ++i)
      EXPECT_EQ(back.u(i, j), st.u(i, j));
  std::remove(path.c_str());
}

TEST(Checkpoint, RestartContinuesBitIdentically) {
  // Run 10 steps; checkpoint; run 10 more. Restarting from the
  // checkpoint and running the same 10 steps must match exactly.
  auto st = busy_state();
  s::ModelParams p;
  p.coriolis = 1e-4;
  p.boundary = s::BoundaryKind::periodic;
  s::Stepper stepper(st.grid, p);
  stepper.run(st, 8.0, 10);
  const auto path = tmp_path("nestwx_restart.bin");
  io::save_checkpoint(st, path);
  stepper.run(st, 8.0, 10);

  auto resumed = io::load_checkpoint(path);
  s::Stepper stepper2(resumed.grid, p);
  stepper2.run(resumed, 8.0, 10);
  for (int j = 0; j < st.grid.ny; ++j)
    for (int i = 0; i < st.grid.nx; ++i)
      EXPECT_EQ(resumed.h(i, j), st.h(i, j)) << i << "," << j;
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsMissingFile) {
  EXPECT_THROW(io::load_checkpoint("/no/such/ckpt.bin"),
               PreconditionError);
}

TEST(Checkpoint, RejectsGarbageFile) {
  const auto path = tmp_path("nestwx_garbage.bin");
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a checkpoint at all";
  }
  EXPECT_THROW(io::load_checkpoint(path), PreconditionError);
  std::remove(path.c_str());
}

TEST(Checkpoint, RejectsTruncatedFile) {
  const auto st = busy_state();
  const auto path = tmp_path("nestwx_trunc.bin");
  io::save_checkpoint(st, path);
  // Truncate to half size.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = static_cast<long>(in.tellg());
  in.close();
  std::string data(static_cast<std::size_t>(size / 2), '\0');
  {
    std::ifstream re(path, std::ios::binary);
    re.read(data.data(), size / 2);
  }
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), size / 2);
  }
  EXPECT_THROW(io::load_checkpoint(path), PreconditionError);
  std::remove(path.c_str());
}

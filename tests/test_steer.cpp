#include "steer/tracker.hpp"

#include <gtest/gtest.h>

#include "swm/diagnostics.hpp"
#include "swm/init.hpp"
#include "util/error.hpp"

namespace st = nestwx::steer;
namespace n = nestwx::nest;
namespace s = nestwx::swm;

namespace {

/// A depression embedded in a balanced eastward flow: it drifts east at
/// roughly u0.
n::NestedSimulation drifting_sim(double u0, int nest_anchor = 8) {
  s::GridSpec g;
  g.nx = g.ny = 64;
  g.dx = g.dy = 10e3;
  const double f = 1e-4;
  auto parent = s::depression(g, f, 0.25, 0.5, 400.0, 8.0, 120e3);
  s::add_zonal_flow(parent, f, u0);
  s::ModelParams p;
  p.coriolis = f;
  p.viscosity = 500.0;
  p.boundary = s::BoundaryKind::channel;
  return n::NestedSimulation(
      std::move(parent), p,
      {n::NestSpec{"chaser", nest_anchor, 24, 16, 16, 3}});
}

}  // namespace

TEST(Steer, LocateFeatureFindsVortexInParentCoords) {
  auto sim = drifting_sim(0.0);
  const auto fix = st::locate_feature(sim, 0);
  // Vortex sits at parent (16, 32); the nest covers [8,24)x[24,40).
  EXPECT_NEAR(fix.parent_i, 16.0, 1.5);
  EXPECT_NEAR(fix.parent_j, 32.0, 1.5);
  EXPECT_LT(fix.eta, 395.0);
}

TEST(Steer, CenteredAnchorClampsToParent) {
  auto sim = drifting_sim(0.0);
  const auto [ai, aj] = st::centered_anchor(sim, 0, 16.0, 32.0);
  EXPECT_EQ(ai, 8);
  EXPECT_EQ(aj, 24);
  const auto [ci, cj] = st::centered_anchor(sim, 0, 1.0, 1.0);
  EXPECT_EQ(ci, 1);
  EXPECT_EQ(cj, 1);
  const auto [hi, hj] = st::centered_anchor(sim, 0, 63.0, 63.0);
  EXPECT_EQ(hi, 64 - 16 - 1);
  EXPECT_EQ(hj, 64 - 16 - 1);
}

TEST(Steer, StationaryVortexNeverTriggersRelocation) {
  auto sim = drifting_sim(0.0);
  st::MovingNestController ctrl({3, 1});
  const double dt = sim.stable_dt(0.4);
  for (int k = 0; k < 30; ++k) {
    sim.advance(dt);
    ctrl.update(sim);
  }
  EXPECT_TRUE(ctrl.relocations().empty());
  EXPECT_FALSE(ctrl.track().empty());
}

TEST(Steer, DriftingVortexIsFollowed) {
  auto sim = drifting_sim(6.0);
  st::MovingNestController ctrl({4, 2});
  const double dt = sim.stable_dt(0.4);
  // Drift speed ~6 m/s; crossing half the 160 km nest takes ~3 h.
  for (int k = 0; k < 600; ++k) {
    sim.advance(dt);
    ctrl.update(sim);
  }
  ASSERT_FALSE(ctrl.relocations().empty()) << "nest never relocated";
  // The nest followed the vortex eastward.
  EXPECT_GT(sim.sibling(0).spec().anchor_i, 8);
  ASSERT_TRUE(nestwx::swm::all_finite(sim.sibling(0).state()));
  // The feature is inside the (possibly relocated) nest footprint.
  const auto fix = st::locate_feature(sim, 0);
  const auto& spec = sim.sibling(0).spec();
  EXPECT_GT(fix.parent_i - spec.anchor_i, 1.0);
  EXPECT_GT(spec.anchor_i + spec.cells_x - fix.parent_i, 1.0);
}

TEST(Steer, RelocationPreservesSimulationHealth) {
  auto sim = drifting_sim(6.0);
  st::MovingNestController ctrl({4, 2});
  const double dt = sim.stable_dt(0.4);
  const double mass0 = s::diagnose(sim.parent()).mass;
  for (int k = 0; k < 250; ++k) {
    sim.advance(dt);
    ctrl.update(sim);
  }
  EXPECT_TRUE(s::all_finite(sim.parent()));
  EXPECT_TRUE(s::all_finite(sim.sibling(0).state()));
  EXPECT_NEAR(s::diagnose(sim.parent()).mass / mass0, 1.0, 5e-3);
}

TEST(Steer, RelocateSiblingValidatesPlacement) {
  auto sim = drifting_sim(0.0);
  EXPECT_THROW(sim.relocate_sibling(0, 60, 60),
               nestwx::util::PreconditionError);
  EXPECT_THROW(sim.relocate_sibling(2, 5, 5),
               nestwx::util::PreconditionError);
  sim.relocate_sibling(0, 20, 20);
  EXPECT_EQ(sim.sibling(0).spec().anchor_i, 20);
}

TEST(Steer, QuarantinedSiblingIsNotTracked) {
  // A quarantined nest carries parent-interpolated data with no feature
  // of its own: the controller must skip it entirely — no fixes, no
  // relocations — and resume tracking when it is released.
  auto sim = drifting_sim(6.0);
  sim.set_sibling_quarantined(0, true);
  st::MovingNestController ctrl({4, 1});
  const double dt = sim.stable_dt(0.4);
  const int anchor_before = sim.sibling(0).spec().anchor_i;
  for (int k = 0; k < 20; ++k) {
    sim.advance(dt);
    ctrl.update(sim);
  }
  EXPECT_TRUE(ctrl.track().empty());
  EXPECT_TRUE(ctrl.relocations().empty());
  EXPECT_EQ(sim.sibling(0).spec().anchor_i, anchor_before);
  sim.set_sibling_quarantined(0, false);
  sim.advance(dt);
  ctrl.update(sim);
  EXPECT_FALSE(ctrl.track().empty());
}

TEST(Steer, PolicyValidation) {
  EXPECT_THROW(st::MovingNestController({0, 1}),
               nestwx::util::PreconditionError);
  EXPECT_THROW(st::MovingNestController({3, 0}),
               nestwx::util::PreconditionError);
}

TEST(Steer, ZonalFlowIsBalanced) {
  s::GridSpec g;
  g.nx = g.ny = 48;
  g.dx = g.dy = 8e3;
  const double f = 1e-4;
  auto state = s::lake_at_rest(g, 500.0);
  s::add_zonal_flow(state, f, 8.0);
  s::ModelParams p;
  p.coriolis = f;
  p.boundary = s::BoundaryKind::open;  // tilted surface: keep ghosts fixed
  s::apply_boundary(state, s::BoundaryKind::open);
  s::Tendency t(g);
  s::compute_tendency(state, p, t);
  // Interior tendencies must be tiny relative to the unbalanced case.
  EXPECT_LT(std::abs(t.dv(24, 24)), 1e-10);
  EXPECT_LT(std::abs(t.du(24, 24)), 1e-10);
}

#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/error.hpp"

namespace u = nestwx::util;

TEST(Summarize, EmptySampleYieldsZeros) {
  const auto s = u::summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Summarize, SingleValue) {
  const std::vector<double> v{4.5};
  const auto s = u::summarize(v);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.min, 4.5);
  EXPECT_DOUBLE_EQ(s.max, 4.5);
  EXPECT_DOUBLE_EQ(s.mean, 4.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Summarize, KnownSample) {
  const std::vector<double> v{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const auto s = u::summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic population-stddev example
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
  EXPECT_DOUBLE_EQ(s.sum, 40.0);
}

TEST(Summarize, NegativeValues) {
  const std::vector<double> v{-3.0, -1.0, 1.0, 3.0};
  const auto s = u::summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.min, -3.0);
}

TEST(Percentile, MedianOfOddSample) {
  const std::vector<double> v{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(u::percentile(v, 50.0), 2.0);
}

TEST(Percentile, InterpolatesBetweenValues) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(u::percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(u::percentile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(u::percentile(v, 100.0), 10.0);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(u::percentile(v, 99.0), 7.0);
}

TEST(Percentile, RejectsEmptyAndOutOfRange) {
  const std::vector<double> v{1.0};
  EXPECT_THROW(u::percentile({}, 50.0), u::PreconditionError);
  EXPECT_THROW(u::percentile(v, -1.0), u::PreconditionError);
  EXPECT_THROW(u::percentile(v, 101.0), u::PreconditionError);
}

TEST(RelativeError, Basic) {
  EXPECT_DOUBLE_EQ(u::relative_error_pct(110.0, 100.0), 10.0);
  EXPECT_DOUBLE_EQ(u::relative_error_pct(90.0, 100.0), 10.0);
  EXPECT_THROW(u::relative_error_pct(1.0, 0.0), u::PreconditionError);
}

TEST(ImprovementPct, Basic) {
  EXPECT_DOUBLE_EQ(u::improvement_pct(2.0, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(u::improvement_pct(1.0, 1.0), 0.0);
  EXPECT_LT(u::improvement_pct(1.0, 2.0), 0.0);  // regression is negative
  EXPECT_THROW(u::improvement_pct(0.0, 1.0), u::PreconditionError);
}

TEST(Accumulator, MatchesBatchSummary) {
  const std::vector<double> v{1.5, -2.0, 3.25, 0.0, 9.75};
  u::Accumulator acc;
  for (double x : v) acc.add(x);
  const auto batch = u::summarize(v);
  const auto stream = acc.summary();
  EXPECT_EQ(stream.count, batch.count);
  EXPECT_NEAR(stream.mean, batch.mean, 1e-12);
  EXPECT_NEAR(stream.stddev, batch.stddev, 1e-12);
  EXPECT_DOUBLE_EQ(stream.min, batch.min);
  EXPECT_DOUBLE_EQ(stream.max, batch.max);
}

// Tests for tools/lint (nestwx-lint): every rule against the fixtures in
// tests/lint/fixtures/, the field counter on inline headers, the plan-key
// manifest check on two mini-trees, and — the gate that matters — the real
// repository tree linting clean.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#endif

#include "lint.hpp"

namespace {

using nestwx::lint::Finding;
using nestwx::lint::count_struct_fields;
using nestwx::lint::format_findings;
using nestwx::lint::lint_plan_key;
using nestwx::lint::lint_source;
using nestwx::lint::lint_tree;

std::string fixture_path(const std::string& name) {
  return std::string(NESTWX_LINT_FIXTURES) + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Lint a fixture file as if it lived at `virtual_path` inside the repo.
std::vector<Finding> lint_fixture(const std::string& name,
                                  const std::string& virtual_path) {
  std::vector<Finding> out;
  lint_source(virtual_path, read_file(fixture_path(name)), out);
  return out;
}

std::vector<std::pair<std::string, int>> rule_lines(
    const std::vector<Finding>& findings) {
  std::vector<std::pair<std::string, int>> out;
  out.reserve(findings.size());
  for (const auto& f : findings) out.emplace_back(f.rule, f.line);
  std::sort(out.begin(), out.end());
  return out;
}

using RL = std::vector<std::pair<std::string, int>>;

TEST(LintUnorderedIteration, FlagsIterationNotLookup) {
  const auto got =
      rule_lines(lint_fixture("unordered_iteration.cpp", "src/campaign/f.cpp"));
  const RL want = {{"unordered-iteration", 15},
                   {"unordered-iteration", 27},
                   {"unordered-iteration", 34}};
  EXPECT_EQ(got, want);
}

TEST(LintWallClockAndRng, FlagsOutsideUtil) {
  const auto got =
      rule_lines(lint_fixture("wall_clock_and_rng.cpp", "src/campaign/f.cpp"));
  const RL want = {{"raw-rng", 17},   {"raw-rng", 18},   {"raw-rng", 19},
                   {"wall-clock", 9}, {"wall-clock", 10}, {"wall-clock", 12}};
  EXPECT_EQ(got, want);
}

TEST(LintWallClockAndRng, UtilIsExempt) {
  EXPECT_TRUE(lint_fixture("wall_clock_and_rng.cpp", "src/util/f.cpp").empty());
}

TEST(LintWallClockAndRng, OutsideSrcIsOutOfScope) {
  EXPECT_TRUE(lint_fixture("wall_clock_and_rng.cpp", "bench/f.cpp").empty());
}

TEST(LintRawAlloc, FlagsInsideSwmOnly) {
  const auto got = rule_lines(lint_fixture("raw_alloc.cpp", "src/swm/f.cpp"));
  const RL want = {{"raw-alloc", 8},
                   {"raw-alloc", 9},
                   {"raw-alloc", 10},
                   {"raw-alloc", 11}};
  EXPECT_EQ(got, want);
  EXPECT_TRUE(lint_fixture("raw_alloc.cpp", "src/campaign/f.cpp").empty());
}

TEST(LintPragmas, FileWideAllowAndMissingJustification) {
  const auto got = rule_lines(lint_fixture("pragmas.cpp", "src/serve/f.cpp"));
  // The file-wide wall-clock allow suppresses steady_clock at line 9; the
  // justification-free pragma at 15 is itself a finding AND fails to
  // suppress the iteration on line 16.
  const RL want = {{"bad-pragma", 15}, {"unordered-iteration", 16}};
  EXPECT_EQ(got, want);
}

TEST(LintFieldCount, CountsDataMembersOnly) {
  EXPECT_EQ(count_struct_fields(read_file(fixture_path("plankey_ok/src/inputs.hpp")),
                                "PlanInputs"),
            3);
}

TEST(LintFieldCount, InlineEdgeCases) {
  const std::string header = R"(
    struct Other { int unrelated; };
    struct Probe {
      std::array<double, 3> origin;      // template comma must not split
      std::map<int, std::vector<int>> m;
      int count NESTWX_GUARDED_BY(mu_) = 0;  // annotation macro stripped
      util::Mutex mu_;
      void tick() { ++count; }
      bool empty() const;
    };
  )";
  EXPECT_EQ(count_struct_fields(header, "Probe"), 4);
  EXPECT_EQ(count_struct_fields(header, "Other"), 1);
  EXPECT_EQ(count_struct_fields(header, "Absent"), -1);
}

TEST(LintPlanKey, ManifestMatchesTree) {
  std::vector<Finding> out;
  lint_plan_key(fixture_path("plankey_ok"), out);
  EXPECT_TRUE(out.empty()) << format_findings(out);
  EXPECT_TRUE(lint_tree(fixture_path("plankey_ok")).empty());
}

TEST(LintPlanKey, DriftAndMissingStructAreFindings) {
  const auto got = rule_lines(lint_tree(fixture_path("plankey_drift")));
  const RL want = {{"plan-key-fields", 3}, {"plan-key-fields", 4}};
  EXPECT_EQ(got, want);
}

TEST(LintPlanKey, ManifestsAnywhereInSrcAreHonoredAndSelfAttributed) {
  const auto got = lint_tree(fixture_path("plankey_scatter"));
  // The anchor manifest in plan_key.cpp is clean; the stale one in
  // src/policy/knobs.cpp must produce exactly one drift finding attributed
  // to its own file, not to the anchor.
  ASSERT_EQ(got.size(), 1u) << format_findings(got);
  EXPECT_EQ(got[0].file, "src/policy/knobs.cpp");
  EXPECT_EQ(got[0].line, 4);
  EXPECT_EQ(got[0].rule, "plan-key-fields");
  EXPECT_NE(got[0].message.find("RetryKnobs"), std::string::npos);
  EXPECT_NE(got[0].message.find("src/policy/knobs.cpp"), std::string::npos);
}

TEST(LintRepo, TreeIsClean) {
  const auto findings = lint_tree(NESTWX_SOURCE_DIR);
  EXPECT_TRUE(findings.empty()) << format_findings(findings);
}

TEST(LintFormat, FileLineRuleMessage) {
  const std::vector<Finding> fs = {{"src/a.cpp", 7, "wall-clock", "no"}};
  EXPECT_EQ(format_findings(fs), "src/a.cpp:7: [wall-clock] no\n");
}

#ifdef NESTWX_LINT_BIN
int run_lint(const std::string& args) {
  const std::string cmd = std::string(NESTWX_LINT_BIN) + " " + args;
  const int rc = std::system(cmd.c_str());
#ifdef WEXITSTATUS
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
#else
  return rc;
#endif
}

TEST(LintCli, ExitCodes) {
  EXPECT_EQ(run_lint("--root=" + fixture_path("plankey_ok")), 0);
  EXPECT_EQ(run_lint("--root=" + fixture_path("plankey_drift")), 1);
  EXPECT_EQ(run_lint("--no-such-flag"), 2);
  EXPECT_EQ(run_lint("--help"), 0);
}

TEST(LintCli, CountFieldsMode) {
  EXPECT_EQ(run_lint("--root=" + fixture_path("plankey_ok") +
                     " --count-fields=src/inputs.hpp:PlanInputs"),
            0);
  EXPECT_EQ(run_lint("--root=" + fixture_path("plankey_ok") +
                     " --count-fields=src/inputs.hpp:Absent"),
            2);
}
#endif  // NESTWX_LINT_BIN

}  // namespace

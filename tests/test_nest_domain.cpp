#include "nest/nested_domain.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "swm/init.hpp"
#include "util/error.hpp"

namespace n = nestwx::nest;
namespace s = nestwx::swm;
using nestwx::util::PreconditionError;

namespace {
s::State make_parent(int nx = 40, int ny = 40, double depth = 300.0) {
  s::GridSpec g;
  g.nx = nx;
  g.ny = ny;
  g.dx = g.dy = 3e3;
  return s::lake_at_rest(g, depth);
}

n::NestSpec basic_spec(int ratio = 3) {
  n::NestSpec spec;
  spec.name = "nest";
  spec.anchor_i = 10;
  spec.anchor_j = 12;
  spec.cells_x = 8;
  spec.cells_y = 6;
  spec.ratio = ratio;
  return spec;
}
}  // namespace

TEST(NestSpec, ChildDimensions) {
  const auto spec = basic_spec(3);
  EXPECT_EQ(spec.child_nx(), 24);
  EXPECT_EQ(spec.child_ny(), 18);
}

TEST(NestedDomain, ChildGridRefinesParent) {
  const auto parent = make_parent();
  const n::NestedDomain nest(parent, basic_spec(3));
  EXPECT_EQ(nest.state().grid.nx, 24);
  EXPECT_EQ(nest.state().grid.ny, 18);
  EXPECT_DOUBLE_EQ(nest.state().grid.dx, 1e3);
}

TEST(NestedDomain, RejectsOutOfBoundsPlacement) {
  const auto parent = make_parent(20, 20);
  auto spec = basic_spec();
  spec.anchor_i = 15;  // 15 + 8 > 19
  EXPECT_THROW(n::NestedDomain(parent, spec), PreconditionError);
  spec = basic_spec();
  spec.anchor_i = 0;  // must be >= 1
  EXPECT_THROW(n::NestedDomain(parent, spec), PreconditionError);
  spec = basic_spec();
  spec.ratio = 0;
  EXPECT_THROW(n::NestedDomain(parent, spec), PreconditionError);
}

TEST(NestedDomain, InitializationReproducesConstantState) {
  const auto parent = make_parent(40, 40, 250.0);
  const n::NestedDomain nest(parent, basic_spec());
  for (int j = 0; j < nest.state().grid.ny; ++j)
    for (int i = 0; i < nest.state().grid.nx; ++i)
      EXPECT_NEAR(nest.state().h(i, j), 250.0, 1e-12);
  EXPECT_LT(nest.state().u.interior_max_abs(), 1e-12);
}

TEST(NestedDomain, InitializationInterpolatesLinearField) {
  auto parent = make_parent(40, 40, 100.0);
  // h = 100 + 0.5·x_cell + 0.25·y_cell (linear in the cell-center coords).
  for (int j = -parent.grid.halo; j < parent.grid.ny + parent.grid.halo; ++j)
    for (int i = -parent.grid.halo; i < parent.grid.nx + parent.grid.halo;
         ++i)
      parent.h(i, j) = 100.0 + 0.5 * (i + 0.5) + 0.25 * (j + 0.5);
  const auto spec = basic_spec(3);
  const n::NestedDomain nest(parent, spec);
  // Child cell (ci,cj) center sits at parent coord anchor+(ci+0.5)/3.
  for (int cj = 0; cj < nest.state().grid.ny; ++cj)
    for (int ci = 0; ci < nest.state().grid.nx; ++ci) {
      const double px = spec.anchor_i + (ci + 0.5) / 3.0;
      const double py = spec.anchor_j + (cj + 0.5) / 3.0;
      EXPECT_NEAR(nest.state().h(ci, cj), 100.0 + 0.5 * px + 0.25 * py,
                  1e-10);
    }
}

TEST(NestedDomain, BoundaryForcingBlendsTimeLevels) {
  const auto prev = make_parent(40, 40, 100.0);
  const auto next = make_parent(40, 40, 200.0);
  n::NestedDomain nest(prev, basic_spec());
  nest.force_boundary(prev, next, 0.25);
  const int halo = nest.state().grid.halo;
  // Ghost cells hold the blended value 0.75·100 + 0.25·200 = 125.
  EXPECT_NEAR(nest.state().h(-1, 0), 125.0, 1e-10);
  EXPECT_NEAR(nest.state().h(nest.state().grid.nx, 0), 125.0, 1e-10);
  EXPECT_NEAR(nest.state().h(0, -halo), 125.0, 1e-10);
  // Interior untouched (still 100 from initialisation).
  EXPECT_NEAR(nest.state().h(5, 5), 100.0, 1e-10);
}

TEST(NestedDomain, BoundaryForcingRejectsBadAlpha) {
  const auto parent = make_parent();
  n::NestedDomain nest(parent, basic_spec());
  EXPECT_THROW(nest.force_boundary(parent, parent, -0.1),
               PreconditionError);
  EXPECT_THROW(nest.force_boundary(parent, parent, 1.1), PreconditionError);
}

TEST(NestedDomain, FeedbackRestrictsChildAverages) {
  auto parent = make_parent(40, 40, 100.0);
  const auto spec = basic_spec(2);
  n::NestedDomain nest(parent, spec);
  // Write a recognisable constant into the child.
  nest.state().h.fill(42.0);
  nest.feedback(parent, /*margin=*/1);
  // Interior footprint cells now carry the child average.
  EXPECT_NEAR(parent.h(spec.anchor_i + 2, spec.anchor_j + 2), 42.0, 1e-12);
  // Margin cells (outermost footprint ring) are untouched.
  EXPECT_NEAR(parent.h(spec.anchor_i, spec.anchor_j), 100.0, 1e-12);
  // Cells outside the footprint untouched.
  EXPECT_NEAR(parent.h(1, 1), 100.0, 1e-12);
}

TEST(NestedDomain, FeedbackAveragesVaryingChildField) {
  auto parent = make_parent(40, 40, 1.0);
  const auto spec = basic_spec(2);
  n::NestedDomain nest(parent, spec);
  // Child h = child i index; parent cell (I,J) gets mean of its 2x2 block.
  for (int cj = 0; cj < nest.state().grid.ny; ++cj)
    for (int ci = 0; ci < nest.state().grid.nx; ++ci)
      nest.state().h(ci, cj) = static_cast<double>(ci);
  nest.feedback(parent, 1);
  // Parent cell I=2 covers child i ∈ {4,5} → mean 4.5.
  EXPECT_NEAR(parent.h(spec.anchor_i + 2, spec.anchor_j + 2), 4.5, 1e-12);
}

TEST(NestedDomain, RoundTripIsConsistent) {
  // initialize-from-parent followed by feedback must reproduce the parent
  // (for smooth fields, up to interpolation error).
  auto parent = make_parent(40, 40, 100.0);
  for (int j = -3; j < 43; ++j)
    for (int i = -3; i < 43; ++i)
      parent.h(i, j) = 100.0 + std::sin(0.2 * i) + std::cos(0.15 * j);
  const auto spec = basic_spec(3);
  n::NestedDomain nest(parent, spec);
  auto copy = parent;
  nest.feedback(copy, 1);
  for (int J = 1; J < spec.cells_y - 1; ++J)
    for (int I = 1; I < spec.cells_x - 1; ++I)
      EXPECT_NEAR(copy.h(spec.anchor_i + I, spec.anchor_j + J),
                  parent.h(spec.anchor_i + I, spec.anchor_j + J), 0.02);
}

/// Additional driver coverage: I/O cadence options, oversubscription
/// clipping, metric consistency, and machine-family comparisons.

#include <gtest/gtest.h>

#include "core/planner.hpp"
#include "util/error.hpp"
#include "workload/configs.hpp"
#include "workload/machines.hpp"
#include "wrfsim/driver.hpp"

namespace c = nestwx::core;
namespace w = nestwx::workload;
namespace ws = nestwx::wrfsim;

namespace {
const nestwx::topo::MachineParams& bgl() {
  static const auto m = w::bluegene_l(256);
  return m;
}
const c::DelaunayPerfModel& model() {
  static const auto mod = c::DelaunayPerfModel::fit(
      ws::profile_basis(bgl(), c::default_basis_domains()));
  return mod;
}
ws::RunResult run(const c::NestedConfig& cfg, const ws::RunOptions& opt = {},
                  c::Strategy st = c::Strategy::concurrent) {
  const auto plan = c::plan_execution(bgl(), cfg, model(), st,
                                      c::Allocator::huffman,
                                      c::MapScheme::multilevel);
  return ws::simulate_run(bgl(), cfg, plan, opt);
}
}  // namespace

TEST(RunMetrics, IntegrationDecomposesExactly) {
  const auto r = run(w::table2_config());
  EXPECT_NEAR(r.integration, r.parent_step + r.nest_phase + r.sync_time,
              1e-12);
  EXPECT_NEAR(r.total, r.integration + r.io_time, 1e-12);
}

TEST(RunMetrics, SiblingTimingFieldsAreConsistent) {
  const auto r = run(w::table2_config());
  ASSERT_EQ(r.sibling_timings.size(), 4u);
  for (std::size_t s = 0; s < 4; ++s) {
    const auto& t = r.sibling_timings[s];
    EXPECT_GT(t.compute, 0.0);
    EXPECT_GT(t.comm, 0.0);
    EXPECT_GT(t.boundary, 0.0);
    EXPECT_NEAR(r.sibling_blocks[s],
                w::table2_config().siblings[s].refinement_ratio *
                    t.substep(),
                1e-12);
    EXPECT_GT(t.ranks, 0);
  }
}

TEST(RunMetrics, MoreFrequentOutputCostsMore) {
  ws::RunOptions sparse;
  sparse.with_io = true;
  sparse.output_every = 16;
  ws::RunOptions dense = sparse;
  dense.output_every = 2;
  const auto r_sparse = run(w::table2_config(), sparse);
  const auto r_dense = run(w::table2_config(), dense);
  EXPECT_GT(r_dense.io_time, r_sparse.io_time);
  EXPECT_NEAR(r_dense.integration, r_sparse.integration, 1e-12);
}

TEST(RunMetrics, ParentOutputCadenceIsSeparate) {
  ws::RunOptions opt;
  opt.with_io = true;
  opt.output_every = 4;
  opt.parent_output_every = 4;
  const auto both_fast = run(w::table2_config(), opt);
  opt.parent_output_every = 400;
  const auto parent_slow = run(w::table2_config(), opt);
  EXPECT_GT(both_fast.io_time, parent_slow.io_time);
}

TEST(RunMetrics, SplitFilesCheaperThanCollectiveAtScale) {
  // The collective's per-writer term only overtakes the split-file
  // metadata cost at large rank counts, so compare on 4096 BG/P cores.
  const auto machine = w::bluegene_p(4096);
  const auto mod = c::DelaunayPerfModel::fit(
      ws::profile_basis(machine, c::default_basis_domains()));
  ws::RunOptions coll;
  coll.with_io = true;
  coll.io_mode = nestwx::iosim::IoMode::pnetcdf_collective;
  ws::RunOptions split = coll;
  split.io_mode = nestwx::iosim::IoMode::split_files;
  const auto plan = c::plan_execution(machine, w::table2_config(), mod,
                                      c::Strategy::sequential,
                                      c::Allocator::huffman,
                                      c::MapScheme::txyz);
  const auto r_coll =
      ws::simulate_run(machine, w::table2_config(), plan, coll);
  const auto r_split =
      ws::simulate_run(machine, w::table2_config(), plan, split);
  EXPECT_LT(r_split.io_time, r_coll.io_time);
}

TEST(RunMetrics, OversubscribedNestClipsAndStillRuns) {
  // A nest narrower than the processor grid: excess columns idle.
  const auto cfg =
      w::make_config("tiny-nest", w::pacific_parent(), {{60, 200}});
  const auto r = run(cfg);
  EXPECT_GT(r.integration, 0.0);
  EXPECT_GT(r.nest_phase, 0.0);
  // The effective rect must have been clipped to <= 60 columns.
  EXPECT_LE(r.sibling_timings[0].ranks, 60 * 200);
}

TEST(RunMetrics, RefinementRatioScalesNestPhase) {
  auto cfg1 = w::make_config("r-test", w::pacific_parent(), {{240, 240}});
  auto cfg2 = cfg1;
  cfg1.siblings[0].refinement_ratio = 2;
  cfg2.siblings[0].refinement_ratio = 4;
  const auto r1 = run(cfg1);
  const auto r2 = run(cfg2);
  EXPECT_NEAR(r2.nest_phase / r1.nest_phase, 2.0, 0.05);
}

TEST(RunMetrics, BgpFasterThanBglSameCoreCount) {
  const auto cfg = w::fig15_config();
  const auto mb = w::bluegene_p(256);
  const auto model_p = c::DelaunayPerfModel::fit(
      ws::profile_basis(mb, c::default_basis_domains()));
  const auto r_l = run(cfg);
  const auto r_p = ws::simulate_run(
      mb, cfg,
      c::plan_execution(mb, cfg, model_p, c::Strategy::concurrent,
                        c::Allocator::huffman, c::MapScheme::multilevel));
  EXPECT_LT(r_p.integration, r_l.integration);
}

TEST(RunMetrics, HopsZeroOnSingleNodeMachine) {
  nestwx::topo::MachineParams tiny;
  tiny.name = "tiny";
  tiny.torus_x = tiny.torus_y = tiny.torus_z = 1;
  tiny.cores_per_node = 4;
  tiny.mode = nestwx::topo::NodeMode::virtual_node;
  const auto cfg = w::make_config("tiny", w::pacific_parent(), {{100, 100}});
  const auto model_t = c::DelaunayPerfModel::fit(
      ws::profile_basis(tiny, c::default_basis_domains()));
  const auto plan = c::plan_execution(tiny, cfg, model_t,
                                      c::Strategy::sequential,
                                      c::Allocator::huffman,
                                      c::MapScheme::txyz);
  const auto r = ws::simulate_run(tiny, cfg, plan);
  EXPECT_DOUBLE_EQ(r.avg_hops, 0.0);
}

TEST(RunMetrics, InvalidOptionsRejected) {
  ws::RunOptions opt;
  opt.iterations = 0;
  EXPECT_THROW(run(w::table2_config(), opt),
               nestwx::util::PreconditionError);
}

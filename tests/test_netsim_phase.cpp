#include "netsim/phase.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "procgrid/grid2d.hpp"
#include "util/error.hpp"

namespace n = nestwx::netsim;
namespace c = nestwx::core;
namespace t = nestwx::topo;
using nestwx::util::PreconditionError;

namespace {

t::MachineParams small_machine() {
  t::MachineParams m;
  m.name = "test";
  m.torus_x = 4;
  m.torus_y = 4;
  m.torus_z = 2;
  m.cores_per_node = 1;
  m.mode = t::NodeMode::smp;
  m.link_bandwidth = 100e6;
  m.hop_latency = 100e-9;
  m.software_latency = 1e-6;
  return m;
}

c::Mapping identity_mapping(const t::MachineParams& m) {
  const nestwx::procgrid::Grid2D grid(m.torus_x * m.torus_z, m.torus_y);
  return c::make_mapping(m, grid, c::MapScheme::xyzt);
}

}  // namespace

TEST(PhaseSim, EmptyPhaseIsFree) {
  const auto m = small_machine();
  const n::PhaseSimulator sim(m);
  const auto map = identity_mapping(m);
  const auto stats = sim.run(map, {});
  EXPECT_EQ(stats.duration, 0.0);
  EXPECT_EQ(stats.total_wait, 0.0);
}

TEST(PhaseSim, SingleMessageTiming) {
  const auto m = small_machine();
  const n::PhaseSimulator sim(m);
  const auto map = identity_mapping(m);
  // Ranks 0 and 1 are x-neighbours (1 hop).
  const std::vector<n::Message> msgs{{0, 1, 1e6}};
  const auto stats = sim.run(map, msgs);
  const double expected = m.software_latency + 1 * m.hop_latency +
                          1e6 / m.link_bandwidth +
                          2e6 / m.pack_bandwidth;
  EXPECT_NEAR(stats.finish[1], expected, 1e-12);
  EXPECT_NEAR(stats.duration, expected, 1e-12);
  EXPECT_DOUBLE_EQ(stats.avg_hops, 1.0);
  EXPECT_EQ(stats.max_link_flows, 1);
}

TEST(PhaseSim, ZeroByteMessageStillPaysLatency) {
  const auto m = small_machine();
  const n::PhaseSimulator sim(m);
  const auto map = identity_mapping(m);
  const std::vector<n::Message> msgs{{0, 1, 0.0}};
  const auto stats = sim.run(map, msgs);
  EXPECT_GT(stats.duration, 0.0);
  EXPECT_NEAR(stats.duration, m.software_latency + m.hop_latency, 1e-12);
}

TEST(PhaseSim, ContentionSlowsSharedLinks) {
  const auto m = small_machine();
  const n::PhaseSimulator sim(m);
  const auto map = identity_mapping(m);
  // Two messages with disjoint routes vs two sharing a link.
  const std::vector<n::Message> disjoint{{0, 1, 1e6}, {4, 5, 1e6}};
  // 0->2 and 1->2: second hop of 0->2 (1->2) shared with 1->2.
  const std::vector<n::Message> shared{{0, 2, 1e6}, {1, 2, 1e6}};
  const auto d = sim.run(map, disjoint);
  const auto s = sim.run(map, shared);
  EXPECT_EQ(d.max_link_flows, 1);
  EXPECT_EQ(s.max_link_flows, 2);
  EXPECT_GT(s.duration, d.duration);
}

TEST(PhaseSim, WaitIsReceiveBlockedTime) {
  const auto m = small_machine();
  const n::PhaseSimulator sim(m);
  const auto map = identity_mapping(m);
  const std::vector<n::Message> msgs{{0, 1, 8e6}};  // 80 ms transfer
  const auto stats = sim.run(map, msgs);
  // Receiver waits almost the whole transfer; sender does not wait.
  EXPECT_GT(stats.wait[1], 0.05);
  EXPECT_DOUBLE_EQ(stats.wait[0], 0.0);
  EXPECT_NEAR(stats.max_wait, stats.wait[1], 1e-15);
  EXPECT_NEAR(stats.total_wait, stats.wait[1], 1e-15);
}

TEST(PhaseSim, ReadySkewPropagates) {
  const auto m = small_machine();
  const n::PhaseSimulator sim(m);
  const auto map = identity_mapping(m);
  std::vector<double> ready(static_cast<std::size_t>(map.nranks()), 0.0);
  ready[0] = 1.0;  // sender starts late
  const std::vector<n::Message> msgs{{0, 1, 1e3}};
  const auto stats = sim.run(map, msgs, ready);
  EXPECT_GT(stats.finish[1], 1.0);
  // Receiver's wait includes the skew.
  EXPECT_GT(stats.wait[1], 0.9);
}

TEST(PhaseSim, IdleRanksKeepReadyTime) {
  const auto m = small_machine();
  const n::PhaseSimulator sim(m);
  const auto map = identity_mapping(m);
  std::vector<double> ready(static_cast<std::size_t>(map.nranks()), 0.5);
  const std::vector<n::Message> msgs{{0, 1, 1e3}};
  const auto stats = sim.run(map, msgs, ready);
  EXPECT_DOUBLE_EQ(stats.finish[5], 0.5);
  EXPECT_DOUBLE_EQ(stats.wait[5], 0.0);
}

TEST(PhaseSim, FartherDestinationTakesLonger) {
  auto m = small_machine();
  m.hop_latency = 1e-3;  // exaggerate hop cost
  const n::PhaseSimulator sim(m);
  const auto map = identity_mapping(m);
  const auto near = sim.run(map, std::vector<n::Message>{{0, 1, 1e3}});
  const auto far = sim.run(map, std::vector<n::Message>{{0, 2, 1e3}});
  EXPECT_GT(far.duration, near.duration);
  EXPECT_GT(far.avg_hops, near.avg_hops);
}

TEST(PhaseSim, HaloBytesFollowMachineSettings) {
  auto m = small_machine();
  m.vertical_levels = 10;
  m.halo_variables = 2;
  m.bytes_per_element = 8;
  const n::PhaseSimulator sim(m);
  EXPECT_DOUBLE_EQ(sim.halo_message_bytes(5), 5.0 * 10 * 2 * 8);
}

TEST(PhaseSim, RejectsBadInputs) {
  const auto m = small_machine();
  const n::PhaseSimulator sim(m);
  const auto map = identity_mapping(m);
  EXPECT_THROW(sim.run(map, std::vector<n::Message>{{0, 99, 1.0}}),
               PreconditionError);
  EXPECT_THROW(sim.run(map, std::vector<n::Message>{{0, 1, -1.0}}),
               PreconditionError);
  std::vector<double> short_ready{0.0};
  EXPECT_THROW(sim.run(map, std::vector<n::Message>{{0, 1, 1.0}},
                       short_ready),
               PreconditionError);
}

TEST(PhaseSim, SelfColocatedRanksAreCheap) {
  auto m = small_machine();
  m.cores_per_node = 2;
  m.mode = t::NodeMode::virtual_node;  // 64 ranks, 2 per node
  const nestwx::procgrid::Grid2D grid(8, 8);
  const auto map = c::make_mapping(m, grid, c::MapScheme::txyz);
  const n::PhaseSimulator sim(m);
  // Ranks 0 and 1 share a node under TXYZ: zero hops.
  const auto stats = sim.run(map, std::vector<n::Message>{{0, 1, 1e6}});
  EXPECT_DOUBLE_EQ(stats.avg_hops, 0.0);
}

#include "fault/recovery.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "campaign/campaign.hpp"
#include "fault/fault_plan.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workload/configs.hpp"
#include "workload/machines.hpp"

namespace cg = nestwx::campaign;
namespace c = nestwx::core;
namespace f = nestwx::fault;
namespace t = nestwx::topo;
namespace w = nestwx::workload;
namespace u = nestwx::util;
using nestwx::procgrid::Rect;
using nestwx::util::PreconditionError;

namespace {

std::shared_ptr<const c::PerfModel> shared_model(int cores) {
  static std::map<int, std::shared_ptr<const c::PerfModel>> cache;
  auto& slot = cache[cores];
  if (!slot) {
    slot = std::make_shared<c::DelaunayPerfModel>(
        c::DelaunayPerfModel::fit(nestwx::wrfsim::profile_basis(
            w::bluegene_l(cores), c::default_basis_domains())));
  }
  return slot;
}

std::vector<cg::MemberSpec> ensemble(int n, int iterations = 20) {
  u::Rng rng(99);
  const auto configs = w::random_configs(rng, n);
  std::vector<cg::MemberSpec> members;
  for (int i = 0; i < n; ++i) {
    cg::MemberSpec spec;
    spec.name = "m" + std::to_string(i);
    spec.config = configs[static_cast<std::size_t>(i)];
    spec.iterations = iterations;
    members.push_back(std::move(spec));
  }
  return members;
}

}  // namespace

// ---------- largest_healthy_rect ----------

TEST(LargestHealthyRect, FullyHealthyReturnsTheWholeRect) {
  const Rect rect{2, 1, 6, 4};
  EXPECT_EQ(f::largest_healthy_rect(rect, t::HealthMask{}), rect);
}

TEST(LargestHealthyRect, AvoidsTheFailedColumn) {
  // 8x4 face with column x=2 fully failed: best survivor is 5x4@(3,0).
  t::HealthMask mask;
  for (int y = 0; y < 4; ++y) mask.fail_node(2, y);
  const Rect best = f::largest_healthy_rect(Rect{0, 0, 8, 4}, mask);
  EXPECT_EQ(best, (Rect{3, 0, 5, 4}));
}

TEST(LargestHealthyRect, SingleFailureCostsOneRowOrColumn) {
  t::HealthMask mask;
  mask.fail_node(0, 0);
  const Rect best = f::largest_healthy_rect(Rect{0, 0, 4, 4}, mask);
  EXPECT_EQ(best.area(), 12);  // 4x3 or 3x4
}

TEST(LargestHealthyRect, AllFailedReturnsEmpty) {
  t::HealthMask mask;
  for (int y = 0; y < 2; ++y)
    for (int x = 0; x < 2; ++x) mask.fail_node(x, y);
  EXPECT_TRUE(f::largest_healthy_rect(Rect{0, 0, 2, 2}, mask).empty());
}

TEST(LargestHealthyRect, TieBreakIsDeterministic) {
  // Centre failure of a 3x3: four 3-cell candidates tie on area; the
  // smallest y0, then x0, then widest rule picks the top row.
  t::HealthMask mask;
  mask.fail_node(1, 1);
  const Rect best = f::largest_healthy_rect(Rect{0, 0, 3, 3}, mask);
  EXPECT_EQ(best, (Rect{0, 0, 3, 1}));
}

TEST(LargestHealthyRect, RejectsEmptyInput) {
  EXPECT_THROW(f::largest_healthy_rect(Rect{0, 0, 0, 4}, t::HealthMask{}),
               PreconditionError);
}

// ---------- run_with_faults ----------

TEST(FaultRecovery, EmptyPlanMatchesTheOrdinaryCampaign) {
  const auto machine = w::bluegene_l(256);
  cg::CampaignScheduler scheduler(machine, shared_model(256));
  const auto members = ensemble(4);
  cg::CampaignOptions options;
  options.threads = 1;

  f::FaultOptions faults;
  faults.checkpoint_every = 0;  // no checkpoint premium either
  const auto report =
      f::run_with_faults(scheduler, members, options, faults);

  cg::CampaignScheduler plain(machine, shared_model(256));
  const auto expected = plain.run(members, options);

  ASSERT_EQ(report.campaign.members.size(), expected.members.size());
  for (std::size_t i = 0; i < expected.members.size(); ++i) {
    EXPECT_EQ(report.campaign.members[i].rect, expected.members[i].rect);
    EXPECT_EQ(report.campaign.members[i].plan_key,
              expected.members[i].plan_key);
    EXPECT_DOUBLE_EQ(report.campaign.members[i].completion_seconds,
                     expected.members[i].completion_seconds);
  }
  EXPECT_DOUBLE_EQ(report.campaign.metrics.makespan,
                   expected.metrics.makespan);
  EXPECT_EQ(report.metrics.recoveries, 0);
  EXPECT_DOUBLE_EQ(report.metrics.goodput, 1.0);
  EXPECT_TRUE(report.final_health.all_healthy());
}

TEST(FaultRecovery, CheckpointingChargesAWritePremium) {
  const auto machine = w::bluegene_l(256);
  cg::CampaignScheduler scheduler(machine, shared_model(256));
  const auto members = ensemble(2);
  cg::CampaignOptions options;
  options.threads = 1;

  f::FaultOptions no_ckpt;
  no_ckpt.checkpoint_every = 0;
  f::FaultOptions ckpt;
  ckpt.checkpoint_every = 5;

  const auto fast = f::run_with_faults(scheduler, members, options, no_ckpt);
  const auto slow = f::run_with_faults(scheduler, members, options, ckpt);
  EXPECT_GT(slow.campaign.metrics.makespan, fast.campaign.metrics.makespan)
      << "periodic checkpoints must cost virtual time";
  // Different checkpoint cadences still plan identically (same machine),
  // so the plan keys agree while the timings differ.
  EXPECT_EQ(fast.campaign.members[0].plan_key,
            slow.campaign.members[0].plan_key);
}

TEST(FaultRecovery, MidCampaignFaultRecoversTheStruckMemberOnly) {
  // The acceptance scenario: 4 members, one scripted node fault at t=50%
  // of the fault-free campaign, aimed at the first member's rectangle.
  const auto machine = w::bluegene_l(256);
  cg::CampaignScheduler scheduler(machine, shared_model(256));
  const auto members = ensemble(4);
  cg::CampaignOptions options;
  options.threads = 1;

  const auto baseline = scheduler.run(members, options);
  const auto& victim = baseline.members.front();
  const double t_fault = 0.5 * baseline.metrics.makespan;

  f::FaultOptions faults;
  faults.checkpoint_every = 5;
  faults.plan = f::FaultPlan::parse(
      std::to_string(t_fault) + ":node:" + std::to_string(victim.rect.x0) +
      ":" + std::to_string(victim.rect.y0));

  const auto report =
      f::run_with_faults(scheduler, members, options, faults);
  ASSERT_EQ(report.metrics.recoveries, 1);
  EXPECT_EQ(report.metrics.faults_injected, 1);
  EXPECT_EQ(report.metrics.members_affected, 1);
  EXPECT_EQ(report.metrics.failed_nodes, 1);

  const auto& rec = report.recoveries.front();
  EXPECT_EQ(rec.member, 0);
  EXPECT_EQ(rec.old_rect, victim.rect);
  EXPECT_TRUE(victim.rect.contains(rec.new_rect));
  EXPECT_LT(rec.new_rect.area(), victim.rect.area());
  EXPECT_FALSE(rec.new_rect.contains(rec.event.x, rec.event.y));
  EXPECT_NE(rec.replan_key, victim.plan_key)
      << "the replanned sub-machine must have a distinct cache key";
  EXPECT_GT(rec.recovery_seconds, 0.0);
  EXPECT_GE(rec.lost_seconds, 0.0);
  EXPECT_GT(rec.resume_iteration, 0)
      << "a mid-run fault with checkpoints must not restart from zero";
  EXPECT_EQ(rec.resume_iteration % faults.checkpoint_every, 0);

  // The struck member pays; the untouched members do not.
  EXPECT_EQ(report.member_stats[0].attempts, 2);
  EXPECT_GT(report.campaign.members[0].completion_seconds,
            victim.completion_seconds);
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(report.member_stats[i].attempts, 1);
    EXPECT_DOUBLE_EQ(report.member_stats[i].lost_seconds, 0.0);
    EXPECT_EQ(report.campaign.members[i].rect, baseline.members[i].rect);
  }
  EXPECT_LT(report.metrics.goodput, 1.0);
  EXPECT_GT(report.metrics.goodput, 0.0);
  EXPECT_EQ(report.final_health.failed_count(), 1);
}

TEST(FaultRecovery, ReportIsIdenticalAcrossThreadCountsAndReplays) {
  const auto machine = w::bluegene_l(256);
  const auto members = ensemble(4);
  f::FaultOptions faults;
  faults.checkpoint_every = 5;
  faults.plan =
      f::FaultPlan::random(21, 4, 400.0, machine.torus_x, machine.torus_y);

  auto run_at = [&](int threads) {
    cg::CampaignScheduler scheduler(machine, shared_model(256));
    cg::CampaignOptions options;
    options.threads = threads;
    const auto report =
        f::run_with_faults(scheduler, members, options, faults);
    return f::report_to_json(report, machine, options, faults);
  };
  const std::string one = run_at(1);
  EXPECT_EQ(one, run_at(8)) << "fault reports must not depend on threads";
  EXPECT_EQ(one, run_at(1)) << "fault-plan replay must reproduce exactly";
}

TEST(FaultRecovery, LaterWavesAvoidFailedNodes) {
  // Single-member waves (max_concurrent=1): a fault during wave 0 must
  // shrink the face that waves 1+ are laid out on.
  const auto machine = w::bluegene_l(256);
  cg::CampaignScheduler scheduler(machine, shared_model(256));
  const auto members = ensemble(3);
  cg::CampaignOptions options;
  options.threads = 1;
  options.max_concurrent = 1;

  f::FaultOptions faults;
  faults.checkpoint_every = 5;
  faults.plan = f::FaultPlan::parse("1:node:0:0");

  const auto report =
      f::run_with_faults(scheduler, members, options, faults);
  EXPECT_EQ(report.campaign.metrics.waves, 3);
  for (const auto& m : report.campaign.members)
    EXPECT_FALSE(m.rect.contains(0, 0))
        << m.name << " was laid out over the failed node";
}

TEST(FaultRecovery, FaultsAfterTheCampaignOnlyDegradeTheMask) {
  const auto machine = w::bluegene_l(256);
  cg::CampaignScheduler scheduler(machine, shared_model(256));
  const auto members = ensemble(2);
  cg::CampaignOptions options;
  options.threads = 1;

  f::FaultOptions faults;
  faults.plan = f::FaultPlan::parse("1e9:node:1:1");
  const auto report =
      f::run_with_faults(scheduler, members, options, faults);
  EXPECT_EQ(report.metrics.faults_injected, 0);
  EXPECT_EQ(report.metrics.faults_after_end, 1);
  EXPECT_EQ(report.metrics.recoveries, 0);
  EXPECT_EQ(report.final_health.failed_count(), 1);
  EXPECT_DOUBLE_EQ(report.metrics.goodput, 1.0);
}

TEST(FaultRecovery, RejectsPlansOutsideTheFace) {
  const auto machine = w::bluegene_l(256);  // 8x4x4 torus
  cg::CampaignScheduler scheduler(machine, shared_model(256));
  const auto members = ensemble(1);
  f::FaultOptions faults;
  faults.plan = f::FaultPlan::parse("10:node:8:0");
  EXPECT_THROW(f::run_with_faults(scheduler, members, {}, faults),
               PreconditionError);
}

TEST(FaultRecovery, LinkFaultKillsBothEndpointColumns) {
  const auto machine = w::bluegene_l(256);
  cg::CampaignScheduler scheduler(machine, shared_model(256));
  const auto members = ensemble(2);
  cg::CampaignOptions options;
  options.threads = 1;

  f::FaultOptions faults;
  faults.checkpoint_every = 5;
  faults.plan = f::FaultPlan::parse("1:link:2:1:x");
  const auto report =
      f::run_with_faults(scheduler, members, options, faults);
  EXPECT_EQ(report.final_health.failed_count(), 2);
  EXPECT_FALSE(report.final_health.healthy(2, 1));
  EXPECT_FALSE(report.final_health.healthy(3, 1));
}

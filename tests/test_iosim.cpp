#include "iosim/io_model.hpp"
#include "iosim/writer.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "swm/init.hpp"
#include "util/error.hpp"
#include "workload/machines.hpp"

namespace io = nestwx::iosim;
using nestwx::util::PreconditionError;

namespace {
nestwx::topo::MachineParams bgp() {
  return nestwx::workload::bluegene_p(512);
}
}  // namespace

TEST(IoModel, CollectiveTimeGrowsWithWriters) {
  const io::IoModel model(bgp());
  const double bytes = 100e6;
  const double t512 =
      model.write_time(bytes, 512, io::IoMode::pnetcdf_collective);
  const double t2048 =
      model.write_time(bytes, 2048, io::IoMode::pnetcdf_collective);
  const double t8192 =
      model.write_time(bytes, 8192, io::IoMode::pnetcdf_collective);
  EXPECT_LT(t512, t2048);
  EXPECT_LT(t2048, t8192);  // the paper's Fig. 13b trend
}

TEST(IoModel, FewerWritersBeatTheFullSet) {
  // The concurrent strategy's I/O benefit: a sibling file written by its
  // partition only is cheaper than one written by every rank.
  const io::IoModel model(bgp());
  const double bytes = 200e6;
  EXPECT_LT(model.write_time(bytes, 432, io::IoMode::pnetcdf_collective),
            model.write_time(bytes, 4096, io::IoMode::pnetcdf_collective));
}

TEST(IoModel, StreamingTermScalesWithBytes) {
  const io::IoModel model(bgp());
  const double t1 =
      model.write_time(100e6, 64, io::IoMode::pnetcdf_collective);
  const double t2 =
      model.write_time(200e6, 64, io::IoMode::pnetcdf_collective);
  const double stream = 100e6 / bgp().io_stream_bandwidth;
  EXPECT_NEAR(t2 - t1, stream, 1e-9);
}

TEST(IoModel, SplitFilesScaleMildlyWithWriters) {
  const io::IoModel model(bgp());
  const double bytes = 100e6;
  const double t64 = model.write_time(bytes, 64, io::IoMode::split_files);
  const double t4096 =
      model.write_time(bytes, 4096, io::IoMode::split_files);
  EXPECT_LT(t4096 / t64, 3.5);  // much flatter than collective
  const double c64 =
      model.write_time(bytes, 64, io::IoMode::pnetcdf_collective);
  const double c4096 =
      model.write_time(bytes, 4096, io::IoMode::pnetcdf_collective);
  EXPECT_GT(c4096 / c64, t4096 / t64);
}

TEST(IoModel, RejectsBadArguments) {
  const io::IoModel model(bgp());
  EXPECT_THROW(model.write_time(-1.0, 4, io::IoMode::split_files),
               PreconditionError);
  EXPECT_THROW(model.write_time(1.0, 0, io::IoMode::split_files),
               PreconditionError);
}

TEST(IoModel, FrameBytesFormula) {
  EXPECT_DOUBLE_EQ(io::IoModel::frame_bytes(100, 50, 35, 10),
                   100.0 * 50 * 35 * 10 * 4);
  EXPECT_THROW(io::IoModel::frame_bytes(0, 50, 35), PreconditionError);
}

TEST(Writer, FieldCsvRoundTrip) {
  nestwx::swm::Field2D f(3, 2, 1);
  for (int j = 0; j < 2; ++j)
    for (int i = 0; i < 3; ++i) f(i, j) = i + 10 * j;
  const std::string path = ::testing::TempDir() + "nestwx_field.csv";
  io::write_field_csv(f, path);
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "0,1,2");
  std::getline(in, line);
  EXPECT_EQ(line, "10,11,12");
  std::filesystem::remove(path);
}

TEST(Writer, StateFrameWritesFourFields) {
  nestwx::swm::GridSpec g;
  g.nx = 8;
  g.ny = 8;
  auto state = nestwx::swm::lake_at_rest(g, 10.0);
  const std::string dir = ::testing::TempDir() + "nestwx_frames";
  EXPECT_EQ(io::write_state_frame(state, dir, "test", 3), 4);
  for (const char* field : {"h", "u", "v", "eta"}) {
    const auto p = dir + "/test_" + field + "_3.csv";
    EXPECT_TRUE(std::filesystem::exists(p)) << p;
  }
  std::filesystem::remove_all(dir);
}

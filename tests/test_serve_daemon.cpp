/// Campaign-service executor semantics: admission control, priority
/// aging, cross-request coalescing, amend splice/re-plan, and the
/// headline determinism guarantee — a 200-request mixed-priority drain
/// produces byte-identical merged reports at 1, 2 and 8 worker threads,
/// pinned against a golden file (regenerate deliberately with
/// NESTWX_REGEN_GOLDEN=1).

#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/perf_model.hpp"
#include "workload/machines.hpp"
#include "wrfsim/driver.hpp"

namespace sv = nestwx::serve;
namespace cg = nestwx::campaign;
namespace c = nestwx::core;
namespace w = nestwx::workload;

namespace {

std::shared_ptr<const c::PerfModel> shared_model(int cores) {
  static std::map<int, std::shared_ptr<const c::PerfModel>> cache;
  auto& slot = cache[cores];
  if (!slot) {
    slot = std::make_shared<c::DelaunayPerfModel>(
        c::DelaunayPerfModel::fit(nestwx::wrfsim::profile_basis(
            w::bluegene_l(cores), c::default_basis_domains())));
  }
  return slot;
}

sv::CampaignServer make_server(sv::ServeOptions options) {
  return sv::CampaignServer(w::bluegene_l(64), shared_model(64),
                            std::move(options));
}

/// A small submit: 2 members × 10 iterations keeps policy tests quick.
sv::Request submit(const std::string& id, double arrival, int priority,
                   std::uint64_t seed) {
  sv::Request r;
  r.kind = sv::RequestKind::submit;
  r.id = id;
  r.arrival = arrival;
  r.priority = priority;
  r.seed = seed;
  r.members = 2;
  r.iterations = 10;
  return r;
}

sv::Request amend(const std::string& id, double arrival,
                  const std::string& target, int add, int remove) {
  sv::Request r;
  r.kind = sv::RequestKind::amend;
  r.id = id;
  r.arrival = arrival;
  r.target = target;
  r.add_members = add;
  r.remove_members = remove;
  return r;
}

const sv::RequestOutcome& outcome_of(const sv::ServeReport& report,
                                     const std::string& id) {
  for (const auto& o : report.outcomes)
    if (o.request.id == id) return o;
  throw std::runtime_error("no outcome for " + id);
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::string golden_path(const std::string& name) {
  return std::string(NESTWX_GOLDEN_DIR) + "/" + name;
}

void check_golden(const std::string& name, const std::string& actual) {
  const std::string path = golden_path(name);
  if (std::getenv("NESTWX_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_LOG_(INFO) << "regenerated " << path;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run with NESTWX_REGEN_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "report drifted from " << path
      << "; if intentional, regenerate with NESTWX_REGEN_GOLDEN=1";
}

}  // namespace

TEST(ServeAdmission, BoundedQueueRejectsEqualAndEvictsWeaker) {
  sv::ServeOptions options;
  options.queue_depth = 1;
  auto server = make_server(options);
  // r0 is in service when the others arrive; the queue holds one.
  const std::vector<sv::Request> requests = {
      submit("r0", 0.0, 0, 100),
      submit("r1", 1e-3, 1, 101),  // takes the queue slot
      submit("r2", 2e-3, 1, 102),  // equal priority: not strictly weaker
      submit("r3", 3e-3, 3, 103),  // strictly stronger: displaces r1
  };
  const auto report = server.execute(requests);
  EXPECT_EQ(outcome_of(report, "r0").status, sv::OutcomeStatus::completed);
  EXPECT_EQ(outcome_of(report, "r1").status, sv::OutcomeStatus::evicted);
  EXPECT_EQ(outcome_of(report, "r1").detail, "displaced by r3");
  EXPECT_EQ(outcome_of(report, "r2").status, sv::OutcomeStatus::rejected);
  EXPECT_EQ(outcome_of(report, "r2").detail, "queue full");
  EXPECT_EQ(outcome_of(report, "r3").status, sv::OutcomeStatus::completed);
  EXPECT_EQ(report.metrics.completed, 2u);
  EXPECT_EQ(report.metrics.rejected, 1u);
  EXPECT_EQ(report.metrics.evicted, 1u);
  // Never-served requests carry the sentinel times.
  EXPECT_EQ(outcome_of(report, "r2").start, -1.0);
  EXPECT_EQ(outcome_of(report, "r2").finish, -1.0);
}

TEST(ServeAging, StarvedLowPriorityEventuallyOutranksHighPriority) {
  // The low-priority request arrives 0.01 virtual seconds before the
  // high-priority one. With aging_rate 1000 its head start is worth 10
  // effective-priority points — more than the priority gap of 4 — so it
  // must serve first. With aging off, raw priority wins.
  const std::vector<sv::Request> requests = {
      submit("first", 0.0, 0, 100),
      submit("low", 1e-3, 0, 101),
      submit("high", 11e-3, 4, 102),
  };
  sv::ServeOptions aged;
  aged.aging_rate = 1000.0;
  auto aged_server = make_server(aged);
  const auto aged_report = aged_server.execute(requests);
  EXPECT_LT(outcome_of(aged_report, "low").start,
            outcome_of(aged_report, "high").start);

  sv::ServeOptions raw;
  raw.aging_rate = 0.0;
  auto raw_server = make_server(raw);
  const auto raw_report = raw_server.execute(requests);
  EXPECT_LT(outcome_of(raw_report, "high").start,
            outcome_of(raw_report, "low").start);
  // Everyone is served either way; aging only reorders.
  EXPECT_EQ(aged_report.metrics.completed, 3u);
  EXPECT_EQ(raw_report.metrics.completed, 3u);
}

TEST(ServeDedup, IdenticalFingerprintsCoalesceOntoOneExecution) {
  sv::ServeOptions options;
  options.queue_depth = 1;  // followers must not consume queue slots
  auto server = make_server(options);
  sv::Request rb = submit("rB", 2e-3, 3, 101);  // same work as rA, new id
  const std::vector<sv::Request> requests = {
      submit("r0", 0.0, 0, 100),
      submit("rA", 1e-3, 0, 101),
      rb,
      submit("rC", 3e-3, 0, 100),  // same work as the in-service r0
  };
  const auto report = server.execute(requests);
  const auto& ra = outcome_of(report, "rA");
  const auto& rbo = outcome_of(report, "rB");
  const auto& rc = outcome_of(report, "rC");
  EXPECT_EQ(ra.status, sv::OutcomeStatus::completed);
  EXPECT_EQ(rbo.status, sv::OutcomeStatus::coalesced);
  EXPECT_EQ(rbo.detail, "shared rA");
  EXPECT_EQ(rbo.finish, ra.finish);
  EXPECT_EQ(rbo.members, ra.members);
  EXPECT_FALSE(rbo.executed);  // one execution, shared result
  EXPECT_EQ(rc.status, sv::OutcomeStatus::coalesced);
  EXPECT_EQ(rc.detail, "shared r0");
  EXPECT_EQ(rc.finish, outcome_of(report, "r0").finish);
  EXPECT_EQ(report.metrics.completed, 2u);
  EXPECT_EQ(report.metrics.coalesced, 2u);
  // A follower that arrived after service began waited zero virtual time.
  EXPECT_EQ(rc.queue_wait, 0.0);
}

TEST(ServeDedup, FollowersMakeTheirPrimaryEvictionImmune) {
  sv::ServeOptions options;
  options.queue_depth = 1;
  auto server = make_server(options);
  const std::vector<sv::Request> requests = {
      submit("r0", 0.0, 0, 100),
      submit("rA", 1e-3, 0, 101),
      submit("rB", 2e-3, 0, 101),  // coalesces onto queued rA
      submit("rD", 3e-3, 4, 102),  // stronger, but rA now has a follower
  };
  const auto report = server.execute(requests);
  // Evicting rA would orphan rB's promised response, so rD is rejected
  // even though its priority is strictly higher.
  EXPECT_EQ(outcome_of(report, "rA").status, sv::OutcomeStatus::completed);
  EXPECT_EQ(outcome_of(report, "rB").status, sv::OutcomeStatus::coalesced);
  EXPECT_EQ(outcome_of(report, "rD").status, sv::OutcomeStatus::rejected);
  EXPECT_EQ(report.metrics.evicted, 0u);
}

TEST(ServeAmend, SplicesIntoAQueuedTargetAndUpdatesItsFingerprint) {
  auto server = make_server(sv::ServeOptions{});
  sv::Request grown = submit("r2", 3e-3, 0, 101);
  grown.members = 3;  // identical to r1 *after* its amend
  const std::vector<sv::Request> requests = {
      submit("r0", 0.0, 0, 100),
      submit("r1", 1e-3, 0, 101),
      amend("a1", 2e-3, "r1", /*add=*/1, /*remove=*/0),
      grown,
  };
  const auto report = server.execute(requests);
  const auto& a1 = outcome_of(report, "a1");
  EXPECT_EQ(a1.status, sv::OutcomeStatus::amend_applied);
  EXPECT_EQ(a1.detail, "spliced into queued r1");
  const auto& r1 = outcome_of(report, "r1");
  EXPECT_EQ(r1.status, sv::OutcomeStatus::completed);
  EXPECT_EQ(r1.members, 3);
  EXPECT_EQ(r1.campaign.members, 3);
  // The splice recomputed r1's fingerprint: a later submit asking for the
  // amended ensemble coalesces onto it.
  EXPECT_EQ(outcome_of(report, "r2").status, sv::OutcomeStatus::coalesced);
  EXPECT_EQ(outcome_of(report, "r2").detail, "shared r1");
  EXPECT_EQ(report.metrics.amends_applied, 1u);
  EXPECT_EQ(report.metrics.submitted, 4u);
}

TEST(ServeAmend, InServiceTargetGetsAnIncrementalReplanFromTheCache) {
  // Amend lands while the target is serving: the service synthesises a
  // re-plan request with the same ensemble seed. Under time sharing a
  // member's plan is independent of wave composition, so every unchanged
  // member's plan must come straight from the shared cache.
  auto server = make_server(sv::ServeOptions{});
  sv::Request r0 = submit("r0", 0.0, 0, 100);
  r0.members = 3;
  r0.sharing = nestwx::campaign::Sharing::time;
  const std::vector<sv::Request> requests = {
      r0,
      amend("a1", 1e-3, "r0", /*add=*/1, /*remove=*/0),
  };
  const auto report = server.execute(requests);
  const auto& a1 = outcome_of(report, "a1");
  EXPECT_EQ(a1.status, sv::OutcomeStatus::amend_replanned);
  ASSERT_EQ(report.outcomes.size(), 3u);  // the synthesised re-plan appends
  const auto& synth = report.outcomes[2];
  EXPECT_EQ(a1.detail, "re-plan " + synth.request.id);
  EXPECT_EQ(synth.request.id, "r0-replan1");
  EXPECT_EQ(synth.status, sv::OutcomeStatus::completed);
  EXPECT_EQ(synth.members, 4);
  EXPECT_EQ(synth.request.sharing, nestwx::campaign::Sharing::time);
  // 3 unchanged members hit the cache; only the joiner plans from scratch.
  EXPECT_EQ(synth.campaign.cache_hits, 3u);
  EXPECT_EQ(synth.campaign.cache_misses, 1u);
  EXPECT_EQ(report.metrics.amends_replanned, 1u);
  EXPECT_EQ(report.metrics.completed, 2u);
}

TEST(ServeAmend, InvalidAmendsGetTypedOutcomes) {
  auto server = make_server(sv::ServeOptions{});
  const std::vector<sv::Request> requests = {
      submit("r0", 0.0, 0, 100),  // 2 members
      amend("a-lost", 1e-3, "nope", 1, 0),
      amend("a-drop", 2e-3, "r0", 0, 2),    // would leave 0 members
      amend("a-meta", 3e-3, "a-lost", 1, 0),  // target is not a submit
  };
  const auto report = server.execute(requests);
  EXPECT_EQ(outcome_of(report, "a-lost").status,
            sv::OutcomeStatus::amend_invalid);
  EXPECT_EQ(outcome_of(report, "a-lost").detail, "unknown target nope");
  EXPECT_EQ(outcome_of(report, "a-drop").status,
            sv::OutcomeStatus::amend_invalid);
  EXPECT_EQ(outcome_of(report, "a-meta").status,
            sv::OutcomeStatus::amend_invalid);
  EXPECT_EQ(report.metrics.amends_invalid, 3u);
  // The mangled amends never disturbed the target.
  EXPECT_EQ(outcome_of(report, "r0").status, sv::OutcomeStatus::completed);
  EXPECT_EQ(outcome_of(report, "r0").members, 2);
}

TEST(ServeDrain, TwoHundredRequestsAreByteIdenticalAtAnyThreadCount) {
  // The acceptance property: a 200-request mixed-priority drain — with
  // coalescing, eviction, spill-to-disk and reload all firing — produces
  // byte-identical merged reports at 1, 2 and 8 worker threads, and the
  // 1-thread report matches the checked-in golden.
  const auto requests = sv::generate_requests(/*seed=*/7, /*count=*/200,
                                              /*mean_gap=*/30.0);
  ASSERT_EQ(requests.size(), 200u);

  std::vector<std::string> reports;
  std::vector<sv::ServeReport> raw;
  for (const int threads : {1, 2, 8}) {
    sv::ServeOptions options;
    options.threads = threads;
    options.queue_depth = 16;
    options.aging_rate = 0.01;
    options.cache.shards = 4;
    options.cache.shard_capacity = 2;
    options.cache.spill_dir =
        fresh_dir("serve_drain_spill_t" + std::to_string(threads));
    auto server = make_server(options);
    sv::ServeReport report = server.execute(requests);
    reports.push_back(
        sv::report_to_json(report, server.machine(), server.options()));
    raw.push_back(std::move(report));
  }
  EXPECT_EQ(reports[0], reports[1]) << "1-thread vs 2-thread drain differs";
  EXPECT_EQ(reports[0], reports[2]) << "1-thread vs 8-thread drain differs";

  // The drain must actually exercise the interesting machinery.
  const sv::ServeReport& r = raw[0];
  EXPECT_GE(r.metrics.coalesced, 1u) << "no cross-request coalesce fired";
  EXPECT_GE(r.cache.spills, 1u) << "no LRU spill-to-disk fired";
  EXPECT_GE(r.cache.reloads, 1u) << "no spill reload fired";
  EXPECT_GE(r.metrics.completed, 10u);
  EXPECT_EQ(r.metrics.submitted, 200u);
  // `waits` is scheduling-dependent and must never appear in the report.
  EXPECT_EQ(reports[0].find("\"waits\""), std::string::npos);

  check_golden("serve_report.json", reports[0]);
}

TEST(ServeDrain, FiftyRequestSmokeMatchesGolden) {
  // The CI smoke job's workload, pinned here too so a drift shows up in
  // ctest before it shows up in CI.
  const auto requests = sv::generate_requests(/*seed=*/11, /*count=*/50,
                                              /*mean_gap=*/40.0);
  sv::ServeOptions options;
  options.queue_depth = 8;
  options.aging_rate = 0.01;
  options.cache.shards = 2;
  options.cache.shard_capacity = 2;
  options.cache.spill_dir = fresh_dir("serve_smoke_spill");
  auto server = make_server(options);
  const auto report = server.execute(requests);
  check_golden("serve_smoke_report.json",
               sv::report_to_json(report, server.machine(),
                                  server.options()));
}

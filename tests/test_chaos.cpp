/// Chaos-layer semantics: script grammar round-trips, injector budget
/// disciplines (global at ordered sites, per-subject at concurrent
/// sites), seeded-mode statelessness, the spill circuit breaker's state
/// machine, and the incident log's canonical deterministic order.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chaos/breaker.hpp"
#include "chaos/chaos_plan.hpp"
#include "chaos/engine.hpp"
#include "chaos/incident.hpp"
#include "chaos/injector.hpp"
#include "util/error.hpp"

namespace ch = nestwx::chaos;
namespace u = nestwx::util;

// --- Script grammar -----------------------------------------------------

TEST(ChaosPlan, ParseToStringRoundTrips) {
  const std::string script =
      "execute:transient:req-0000:0;"
      "execute:stall:req-0137:1:100000;"
      "store_spill:transient:*:9";
  const ch::ChaosPlan plan = ch::ChaosPlan::parse(script);
  ASSERT_EQ(plan.rules.size(), 3u);
  // to_string always emits all five fields (canonical form)...
  EXPECT_EQ(plan.to_string(),
            "execute:transient:req-0000:0:0;"
            "execute:stall:req-0137:1:100000;"
            "store_spill:transient:*:9:0");
  // ...and the canonical form parses back to the identical plan.
  EXPECT_EQ(ch::ChaosPlan::parse(plan.to_string()).rules, plan.rules);
}

TEST(ChaosPlan, EmptyScriptIsTheInertPlan) {
  const ch::ChaosPlan plan = ch::ChaosPlan::parse("");
  EXPECT_TRUE(plan.rules.empty());
  EXPECT_TRUE(plan.empty());
  EXPECT_EQ(plan.to_string(), "");
}

TEST(ChaosPlan, OmittedDelaysDefaultPerKind) {
  EXPECT_EQ(ch::ChaosPlan::parse("execute:slow:*").rules[0].delay, 30.0);
  EXPECT_EQ(ch::ChaosPlan::parse("execute:stall:*").rules[0].delay, 3600.0);
  EXPECT_EQ(ch::ChaosPlan::parse("execute:transient:*").rules[0].delay, 0.0);
}

TEST(ChaosPlan, MalformedScriptsThrowTypedErrors) {
  const auto reject = [](const std::string& script) {
    EXPECT_THROW(ch::ChaosPlan::parse(script), u::PreconditionError)
        << "accepted: " << script;
  };
  reject("execute:transient");              // too few fields
  reject("execute:transient:*:0:0:extra");  // too many fields
  reject("warp:transient:*");               // unknown site
  reject("execute:gremlins:*");             // unknown kind
  reject("execute:transient:*;");           // trailing empty rule
  reject("execute:transient:*:x");          // non-numeric budget
  reject("execute:transient:*:-1");         // negative budget
  reject("execute:transient:*:0:5");        // delay on a non-latency kind
  reject("execute:slow:*:0:-2");            // negative delay
}

TEST(ChaosPlan, FingerprintSeesEveryKnob) {
  ch::ChaosPlan plan = ch::ChaosPlan::parse("execute:transient:*:1");
  const std::uint64_t base = plan.fingerprint();
  ch::ChaosPlan other = plan;
  other.seed = 1;
  EXPECT_NE(other.fingerprint(), base);
  other = plan;
  other.rate = 0.25;
  EXPECT_NE(other.fingerprint(), base);
  other = ch::ChaosPlan::parse("execute:transient:*:2");
  EXPECT_NE(other.fingerprint(), base);
  // Same configuration, same fingerprint — the replay-matching property.
  EXPECT_EQ(ch::ChaosPlan::parse("execute:transient:*:1").fingerprint(),
            base);
}

TEST(ChaosPlan, SiteAndKindNamesRoundTrip) {
  for (std::size_t i = 0; i < ch::kSiteCount; ++i) {
    const ch::Site site = static_cast<ch::Site>(i);
    EXPECT_EQ(ch::site_from_string(ch::to_string(site)), site);
  }
  for (ch::FaultKind kind :
       {ch::FaultKind::transient, ch::FaultKind::permanent,
        ch::FaultKind::corrupt, ch::FaultKind::slow, ch::FaultKind::stall})
    EXPECT_EQ(ch::kind_from_string(ch::to_string(kind)), kind);
  EXPECT_THROW(ch::site_from_string("nowhere"), u::PreconditionError);
  EXPECT_THROW(ch::kind_from_string("never"), u::PreconditionError);
}

// --- Injector -----------------------------------------------------------

TEST(ChaosInjector, OrderedSiteBudgetIsGlobalAcrossSubjects) {
  ch::ChaosInjector inj(ch::ChaosPlan::parse("execute:transient:*:2"));
  EXPECT_TRUE(inj.consult(ch::Site::execute, "a", 1).faulted);
  EXPECT_TRUE(inj.consult(ch::Site::execute, "b", 1).faulted);
  // Two injections spent the whole rule budget, whoever absorbed them.
  EXPECT_FALSE(inj.consult(ch::Site::execute, "c", 1).faulted);
  EXPECT_FALSE(inj.consult(ch::Site::execute, "a", 2).faulted);
  EXPECT_EQ(inj.injected(), 2u);
  EXPECT_EQ(inj.injected_at(ch::Site::execute), 2u);
  EXPECT_EQ(inj.injected_at(ch::Site::store_spill), 0u);
}

TEST(ChaosInjector, ConcurrentSiteBudgetCountsPerSubject) {
  // store_reload is consulted from worker threads, so a "*:1" budget is
  // one injection PER SUBJECT — a global counter would make the outcome
  // depend on which thread reached the injector first.
  ch::ChaosInjector inj(ch::ChaosPlan::parse("store_reload:transient:*:1"));
  EXPECT_TRUE(inj.consult(ch::Site::store_reload, "a", 1).faulted);
  EXPECT_FALSE(inj.consult(ch::Site::store_reload, "a", 2).faulted);
  EXPECT_TRUE(inj.consult(ch::Site::store_reload, "b", 1).faulted);
  EXPECT_EQ(inj.injected_at(ch::Site::store_reload), 2u);
}

TEST(ChaosInjector, RulesFilterBySiteAndSubject) {
  ch::ChaosInjector inj(ch::ChaosPlan::parse("execute:permanent:req-1:0"));
  EXPECT_FALSE(inj.consult(ch::Site::execute, "req-2", 1).faulted);
  EXPECT_FALSE(inj.consult(ch::Site::store_spill, "req-1", 1).faulted);
  const ch::FaultDecision d = inj.consult(ch::Site::execute, "req-1", 1);
  EXPECT_TRUE(d.faulted);
  EXPECT_EQ(d.kind, ch::FaultKind::permanent);
  EXPECT_EQ(d.rule, "execute:permanent:req-1:0:0");
}

TEST(ChaosInjector, FirstMatchingRuleDecides) {
  ch::ChaosInjector inj(ch::ChaosPlan::parse(
      "execute:stall:*:0:123;execute:transient:*:0"));
  const ch::FaultDecision d = inj.consult(ch::Site::execute, "x", 1);
  EXPECT_TRUE(d.faulted);
  EXPECT_EQ(d.kind, ch::FaultKind::stall);
  EXPECT_EQ(d.delay, 123.0);
}

TEST(ChaosInjector, SeededModeIsStatelessAndDeterministic) {
  ch::ChaosPlan plan;  // no scripted rules
  plan.seed = 42;
  plan.rate = 0.5;
  ch::ChaosInjector a(plan);
  ch::ChaosInjector b(plan);
  std::size_t faulted = 0;
  for (int i = 0; i < 64; ++i) {
    const std::string subject = "req-" + std::to_string(i);
    const ch::FaultDecision da = a.consult(ch::Site::execute, subject, 1);
    // Two injectors with the same plan agree; the same injector asked
    // again agrees with itself (the decision is a pure hash, no state).
    EXPECT_EQ(da.faulted, b.consult(ch::Site::execute, subject, 1).faulted);
    EXPECT_EQ(da.faulted, a.consult(ch::Site::execute, subject, 1).faulted);
    if (da.faulted) {
      EXPECT_EQ(da.kind, ch::FaultKind::transient);
      EXPECT_EQ(da.rule, "seeded");
      ++faulted;
    }
  }
  // rate = 0.5 over 64 draws: both all-faulted and none-faulted would
  // mean the hash ignores its inputs.
  EXPECT_GT(faulted, 0u);
  EXPECT_LT(faulted, 64u);
  // A certain rate faults every attempt; a zero rate never does.
  plan.rate = 1.0;
  EXPECT_TRUE(ch::ChaosInjector(plan)
                  .consult(ch::Site::cache_shard, "k", 1)
                  .faulted);
  plan.rate = 0.0;
  EXPECT_FALSE(ch::ChaosInjector(plan)
                   .consult(ch::Site::cache_shard, "k", 1)
                   .faulted);
}

TEST(ChaosInjector, OrderedSiteClassificationMatchesTheCallSites) {
  EXPECT_TRUE(ch::ordered_site(ch::Site::spool_submit));
  EXPECT_TRUE(ch::ordered_site(ch::Site::spool_claim));
  EXPECT_TRUE(ch::ordered_site(ch::Site::spool_retire));
  EXPECT_TRUE(ch::ordered_site(ch::Site::store_spill));
  EXPECT_TRUE(ch::ordered_site(ch::Site::execute));
  EXPECT_FALSE(ch::ordered_site(ch::Site::store_reload));
  EXPECT_FALSE(ch::ordered_site(ch::Site::cache_shard));
}

// --- Circuit breaker ----------------------------------------------------

TEST(CircuitBreaker, FullStateMachineInVirtualTime) {
  ch::BreakerPolicy policy;
  policy.failure_threshold = 2;
  policy.cooldown = 10.0;
  ch::CircuitBreaker breaker(policy);
  EXPECT_EQ(breaker.state(), ch::BreakerState::closed);
  EXPECT_TRUE(breaker.allow(0.0));

  // Consecutive failures trip it; a success in between resets the count.
  breaker.record_failure(1.0);
  breaker.record_success(2.0);
  breaker.record_failure(3.0);
  EXPECT_EQ(breaker.state(), ch::BreakerState::closed);
  breaker.record_failure(4.0);
  EXPECT_EQ(breaker.state(), ch::BreakerState::open);
  EXPECT_EQ(breaker.trips(), 1u);

  // Open + inside the cooldown: denied, counted as short circuits.
  EXPECT_FALSE(breaker.allow(5.0));
  EXPECT_FALSE(breaker.allow(13.9));
  EXPECT_EQ(breaker.short_circuits(), 2u);

  // Cooldown elapsed: the next allow() is the half-open probe.
  EXPECT_TRUE(breaker.allow(14.0));
  EXPECT_EQ(breaker.state(), ch::BreakerState::half_open);
  // A failed probe reopens and restarts the cooldown.
  breaker.record_failure(14.5);
  EXPECT_EQ(breaker.state(), ch::BreakerState::open);
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_FALSE(breaker.allow(20.0));  // 14.5 + 10 not yet reached
  EXPECT_TRUE(breaker.allow(24.5));
  breaker.record_success(25.0);
  EXPECT_EQ(breaker.state(), ch::BreakerState::closed);
  EXPECT_EQ(breaker.closes(), 1u);

  // The transition history is chronological and complete.
  const auto transitions = breaker.transitions();
  ASSERT_EQ(transitions.size(), 5u);
  for (std::size_t i = 1; i < transitions.size(); ++i)
    EXPECT_LE(transitions[i - 1].time, transitions[i].time);
  EXPECT_EQ(transitions.front().from, ch::BreakerState::closed);
  EXPECT_EQ(transitions.front().to, ch::BreakerState::open);
  EXPECT_EQ(transitions.back().to, ch::BreakerState::closed);
  EXPECT_EQ(transitions.back().time, 25.0);
}

TEST(CircuitBreaker, StateNamesAreStable) {
  EXPECT_EQ(ch::to_string(ch::BreakerState::closed), "closed");
  EXPECT_EQ(ch::to_string(ch::BreakerState::open), "open");
  EXPECT_EQ(ch::to_string(ch::BreakerState::half_open), "half-open");
}

// --- Incident log -------------------------------------------------------

TEST(IncidentLog, SortedIsCanonicalWhateverTheAppendOrder) {
  const auto make = [](double t, ch::Site site, const std::string& kind,
                       const std::string& subject, int attempt) {
    return ch::Incident{t, site, kind, subject, attempt, ""};
  };
  // Deliberately appended out of order, with ties at every sort level.
  ch::IncidentLog log;
  log.record(make(2.0, ch::Site::execute, "retry", "b", 1));
  log.record(make(1.0, ch::Site::store_spill, "inject-transient", "k", 1));
  log.record(make(2.0, ch::Site::execute, "retry", "a", 2));
  log.record(make(2.0, ch::Site::execute, "inject-transient", "a", 1));
  log.record(make(1.0, ch::Site::spool_claim, "inject-transient", "k", 1));
  EXPECT_EQ(log.size(), 5u);

  const std::vector<ch::Incident> sorted = log.sorted();
  ASSERT_EQ(sorted.size(), 5u);
  // (time, site, subject, attempt, kind, detail): time first, then the
  // site's enum order (spool_claim < store_spill), then subject, then
  // attempt, then kind.
  EXPECT_EQ(sorted[0].site, ch::Site::spool_claim);
  EXPECT_EQ(sorted[1].site, ch::Site::store_spill);
  EXPECT_EQ(sorted[2].subject, "a");
  EXPECT_EQ(sorted[2].attempt, 1);
  EXPECT_EQ(sorted[3].subject, "a");
  EXPECT_EQ(sorted[3].attempt, 2);
  EXPECT_EQ(sorted[4].subject, "b");

  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_TRUE(log.sorted().empty());
}

TEST(IncidentLog, IncidentJsonIsFlatWithStableKeyOrder) {
  const ch::Incident incident{627.93125, ch::Site::execute, "quarantine",
                              "req-0000", 3, "retries exhausted"};
  EXPECT_EQ(ch::incident_to_json(incident),
            "{\"t\": 627.93125, \"site\": \"execute\", "
            "\"kind\": \"quarantine\", \"subject\": \"req-0000\", "
            "\"attempt\": 3, \"detail\": \"retries exhausted\"}");
}

// --- RecoveryPolicies ---------------------------------------------------

TEST(RecoveryPolicies, ActiveOnlyWhenSomePolicyBites) {
  ch::RecoveryPolicies p;
  EXPECT_FALSE(p.active());  // defaults: no faults, no retry, no deadline
  p.retry.max_attempts = 2;
  EXPECT_TRUE(p.active());
  p = ch::RecoveryPolicies{};
  p.deadline = 100.0;
  EXPECT_TRUE(p.active());
  p = ch::RecoveryPolicies{};
  p.plan = ch::ChaosPlan::parse("execute:transient:*:1");
  EXPECT_TRUE(p.active());
  p = ch::RecoveryPolicies{};
  p.plan.rate = 0.1;  // seeded mode alone activates the engine
  EXPECT_TRUE(p.active());
}

TEST(RecoveryPolicies, FingerprintCoversEveryPolicyLayer) {
  ch::RecoveryPolicies p;
  p.plan = ch::ChaosPlan::parse("execute:transient:*:1");
  const std::uint64_t base = p.fingerprint();
  ch::RecoveryPolicies q = p;
  q.deadline = 4000.0;
  EXPECT_NE(q.fingerprint(), base);
  q = p;
  q.retry.max_attempts = 3;
  EXPECT_NE(q.fingerprint(), base);
  q = p;
  q.breaker.cooldown = 2000.0;
  EXPECT_NE(q.fingerprint(), base);
  q = p;
  q.plan.seed = 9;
  EXPECT_NE(q.fingerprint(), base);
  EXPECT_EQ(ch::RecoveryPolicies(p).fingerprint(), base);
}

#include "topo/torus.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace t = nestwx::topo;
using nestwx::util::PreconditionError;

TEST(Torus, NodeIndexRoundTrip) {
  const t::Torus torus(4, 3, 2);
  for (int i = 0; i < torus.node_count(); ++i)
    EXPECT_EQ(torus.node_index(torus.node_coord(i)), i);
}

TEST(Torus, IndexIsXFastest) {
  const t::Torus torus(4, 3, 2);
  EXPECT_EQ(torus.node_index({1, 0, 0}), 1);
  EXPECT_EQ(torus.node_index({0, 1, 0}), 4);
  EXPECT_EQ(torus.node_index({0, 0, 1}), 12);
}

TEST(Torus, RejectsInvalidDims) {
  EXPECT_THROW(t::Torus(0, 1, 1), PreconditionError);
  EXPECT_THROW(t::Torus(1, -1, 1), PreconditionError);
}

TEST(Torus, WrapDistance) {
  EXPECT_EQ(t::Torus::wrap_dist(0, 7, 8), 1);  // wraps around
  EXPECT_EQ(t::Torus::wrap_dist(0, 4, 8), 4);
  EXPECT_EQ(t::Torus::wrap_dist(2, 2, 8), 0);
  EXPECT_EQ(t::Torus::wrap_dist(1, 6, 8), 3);
}

TEST(Torus, HopDistSymmetricAndTriangle) {
  const t::Torus torus(5, 4, 3);
  nestwx::util::Rng rng(3);
  for (int k = 0; k < 200; ++k) {
    const auto a = torus.node_coord(
        static_cast<int>(rng.uniform_int(0, torus.node_count() - 1)));
    const auto b = torus.node_coord(
        static_cast<int>(rng.uniform_int(0, torus.node_count() - 1)));
    const auto c = torus.node_coord(
        static_cast<int>(rng.uniform_int(0, torus.node_count() - 1)));
    EXPECT_EQ(torus.hop_dist(a, b), torus.hop_dist(b, a));
    EXPECT_LE(torus.hop_dist(a, c),
              torus.hop_dist(a, b) + torus.hop_dist(b, c));
    EXPECT_EQ(torus.hop_dist(a, a), 0);
  }
}

TEST(Torus, NeighborWrapsAround) {
  const t::Torus torus(4, 4, 4);
  EXPECT_EQ(torus.neighbor({3, 0, 0}, t::LinkDir::x_plus),
            (t::Coord3{0, 0, 0}));
  EXPECT_EQ(torus.neighbor({0, 0, 0}, t::LinkDir::x_minus),
            (t::Coord3{3, 0, 0}));
  EXPECT_EQ(torus.neighbor({0, 0, 3}, t::LinkDir::z_plus),
            (t::Coord3{0, 0, 0}));
}

TEST(Torus, RouteLengthEqualsHopDist) {
  const t::Torus torus(6, 5, 4);
  nestwx::util::Rng rng(5);
  for (int k = 0; k < 300; ++k) {
    const auto a = torus.node_coord(
        static_cast<int>(rng.uniform_int(0, torus.node_count() - 1)));
    const auto b = torus.node_coord(
        static_cast<int>(rng.uniform_int(0, torus.node_count() - 1)));
    EXPECT_EQ(static_cast<int>(torus.route(a, b).size()),
              torus.hop_dist(a, b));
  }
}

TEST(Torus, RouteEmptyForSameNode) {
  const t::Torus torus(4, 4, 4);
  EXPECT_TRUE(torus.route({1, 2, 3}, {1, 2, 3}).empty());
}

TEST(Torus, RouteTakesShortestDirectionAcrossWrap) {
  const t::Torus torus(8, 1, 1);
  // 0 -> 7 should be one hop in the minus direction.
  const auto r = torus.route({0, 0, 0}, {7, 0, 0});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0], torus.link_index({0, 0, 0}, t::LinkDir::x_minus));
}

TEST(Torus, RouteLinksAreConsecutive) {
  // Each link of a route must start where the previous one ended.
  const t::Torus torus(4, 4, 4);
  const t::Coord3 a{0, 0, 0};
  const t::Coord3 b{2, 3, 1};
  t::Coord3 cur = a;
  for (int link : torus.route(a, b)) {
    const int node = link / 6;
    const auto dir = static_cast<t::LinkDir>(link % 6);
    EXPECT_EQ(node, torus.node_index(cur));
    cur = torus.neighbor(cur, dir);
  }
  EXPECT_EQ(cur, b);
}

TEST(Torus, LinkIndicesUniquePerNodeDirection) {
  const t::Torus torus(3, 3, 3);
  EXPECT_EQ(torus.link_count(), 27 * 6);
  EXPECT_NE(torus.link_index({0, 0, 0}, t::LinkDir::x_plus),
            torus.link_index({0, 0, 0}, t::LinkDir::y_plus));
  EXPECT_NE(torus.link_index({0, 0, 0}, t::LinkDir::x_plus),
            torus.link_index({1, 0, 0}, t::LinkDir::x_plus));
}

TEST(Torus, DegenerateSingleNode) {
  const t::Torus torus(1, 1, 1);
  EXPECT_EQ(torus.node_count(), 1);
  EXPECT_EQ(torus.hop_dist({0, 0, 0}, {0, 0, 0}), 0);
}

#include "procgrid/decomp.hpp"

#include <gtest/gtest.h>

#include <map>

#include "util/error.hpp"

namespace p = nestwx::procgrid;
using nestwx::util::PreconditionError;

TEST(Decomposition, TilesPartitionTheDomain) {
  const p::Grid2D g(4, 3);
  const p::Decomposition d(10, 9, g);
  long long covered = 0;
  for (int r = 0; r < g.size(); ++r) covered += d.tile(r).area();
  EXPECT_EQ(covered, 90);
}

TEST(Decomposition, RemainderSpreadToLeadingBlocks) {
  const p::Grid2D g(3, 1);
  const p::Decomposition d(10, 4, g);
  EXPECT_EQ(d.tile(0).w, 4);  // 10 = 4 + 3 + 3
  EXPECT_EQ(d.tile(1).w, 3);
  EXPECT_EQ(d.tile(2).w, 3);
  EXPECT_EQ(d.tile(0).x0, 0);
  EXPECT_EQ(d.tile(1).x0, 4);
  EXPECT_EQ(d.tile(2).x0, 7);
}

TEST(Decomposition, EvenSplitExact) {
  const p::Grid2D g(4, 4);
  const p::Decomposition d(16, 16, g);
  for (int r = 0; r < g.size(); ++r) {
    EXPECT_EQ(d.tile(r).w, 4);
    EXPECT_EQ(d.tile(r).h, 4);
  }
  EXPECT_EQ(d.max_tile_area(), 16);
}

TEST(Decomposition, MaxTileAreaWithRemainder) {
  const p::Grid2D g(3, 3);
  const p::Decomposition d(10, 10, g);
  EXPECT_EQ(d.max_tile_area(), 16);  // 4x4 corner block
}

TEST(Decomposition, RejectsMoreProcsThanPoints) {
  const p::Grid2D g(8, 1);
  EXPECT_THROW(p::Decomposition(4, 10, g), PreconditionError);
}

TEST(Decomposition, OwnerOfInvertsTiles) {
  const p::Grid2D g(5, 4);
  const p::Decomposition d(23, 17, g);
  for (int r = 0; r < g.size(); ++r) {
    const auto t = d.tile(r);
    EXPECT_EQ(d.owner_of(t.x0, t.y0), r);
    EXPECT_EQ(d.owner_of(t.x1() - 1, t.y1() - 1), r);
  }
  EXPECT_THROW(d.owner_of(23, 0), PreconditionError);
}

TEST(HaloMessages, CountMatchesInteriorTopology) {
  // 3x3 grid: 4 corner ranks with 2 neighbours, 4 edges with 3, 1 interior
  // with 4 => 24 messages.
  const p::Grid2D g(3, 3);
  const p::Decomposition d(9, 9, g);
  EXPECT_EQ(d.halo_messages(1).size(), 24u);
}

TEST(HaloMessages, PairwiseSymmetric) {
  const p::Grid2D g(4, 3);
  const p::Decomposition d(16, 9, g);
  std::map<std::pair<int, int>, int> count;
  for (const auto& m : d.halo_messages(2)) count[{m.src_rank, m.dst_rank}]++;
  for (const auto& [key, c] : count) {
    EXPECT_EQ(c, 1);
    EXPECT_EQ(count.count({key.second, key.first}), 1u);
  }
}

TEST(HaloMessages, ElementsScaleWithEdgeAndWidth) {
  const p::Grid2D g(2, 1);
  const p::Decomposition d(8, 6, g);
  const auto msgs = d.halo_messages(3);
  ASSERT_EQ(msgs.size(), 2u);  // east/west pair
  for (const auto& m : msgs) EXPECT_EQ(m.elements, 6 * 3);
}

TEST(HaloMessages, SingleRankHasNoMessages) {
  const p::Grid2D g(1, 1);
  const p::Decomposition d(10, 10, g);
  EXPECT_TRUE(d.halo_messages(1).empty());
}

TEST(HaloMessages, RejectsNonPositiveWidth) {
  const p::Grid2D g(2, 2);
  const p::Decomposition d(8, 8, g);
  EXPECT_THROW(d.halo_messages(0), PreconditionError);
}

TEST(HaloMessages, MaxEdgeElements) {
  const p::Grid2D g(2, 2);
  const p::Decomposition d(10, 6, g);
  // Tiles are 5x3; x-edges have 3 elements, y-edges 5; width 2.
  EXPECT_EQ(d.max_edge_elements(2), 10);
}

/// Guarded-run tests: the resilience layer must turn a run that plain
/// advance() NaN-poisons into a completed run (rollback + halved-dt
/// retries, sibling quarantine), leave the healthy domains bit-identical
/// to a run in which the bad sibling never existed, and produce
/// byte-identical states and incident logs at any thread count. The
/// incident log of the canonical blow-up scenario is locked in as a
/// golden file (regenerate with NESTWX_REGEN_GOLDEN=1).
///
/// Initial conditions avoid libm transcendentals (flat lake + integer-RNG
/// perturbation + additive spike) so the golden decisions are portable.

#include "resilience/guarded_run.hpp"

#include <gtest/gtest.h>

#include "swm/simd.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/plan_key.hpp"
#include "iosim/checkpoint.hpp"
#include "swm/diagnostics.hpp"
#include "swm/init.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace r = nestwx::resilience;
namespace n = nestwx::nest;
namespace s = nestwx::swm;

namespace {

constexpr double kDt = 40.0;  // ambient Courant ~0.7 on the 8 km parent
constexpr int kSteps = 12;

s::State flat_parent() {
  s::GridSpec g;
  g.nx = g.ny = 48;
  g.dx = g.dy = 8e3;
  auto st = s::lake_at_rest(g, 500.0);
  nestwx::util::Rng rng(11);
  s::perturb(st, rng, 0.1);
  s::apply_boundary(st, s::BoundaryKind::wall);
  return st;
}

s::ModelParams wall_params() {
  s::ModelParams p;
  p.boundary = s::BoundaryKind::wall;
  return p;
}

std::vector<n::NestSpec> three_nests() {
  return {n::NestSpec{"west", 4, 4, 10, 10, 2},
          n::NestSpec{"east", 30, 4, 10, 10, 2},
          n::NestSpec{"north", 18, 30, 10, 10, 2}};
}

/// A finite but violently unstable free-surface spike: CFL at the nominal
/// dt and at dt/2 are both far above 1, so the offending domain strikes
/// out deterministically.
void inject_spike(s::State& st, double amplitude = 2e4) {
  for (int j = 8; j < 12; ++j)
    for (int i = 8; i < 12; ++i) st.h(i, j) += amplitude;
}

std::uint64_t field_hash(const s::Field2D& f) {
  nestwx::core::Fingerprint fp;
  for (double v : f.raw()) fp.mix(v);
  return fp.value();
}

std::uint64_t state_hash(const s::State& st) {
  nestwx::core::Fingerprint fp;
  fp.mix(static_cast<double>(field_hash(st.h)));
  fp.mix(static_cast<double>(field_hash(st.u)));
  fp.mix(static_cast<double>(field_hash(st.v)));
  return fp.value();
}

void expect_states_equal(const s::State& a, const s::State& b,
                         const char* what) {
  ASSERT_EQ(a.grid.nx, b.grid.nx) << what;
  EXPECT_EQ(field_hash(a.h), field_hash(b.h)) << what << " h drifted";
  EXPECT_EQ(field_hash(a.u), field_hash(b.u)) << what << " u drifted";
  EXPECT_EQ(field_hash(a.v), field_hash(b.v)) << what << " v drifted";
}

std::string tmp_path(const char* name) {
  return ::testing::TempDir() + name;
}

}  // namespace

TEST(GuardedRun, PlainAdvanceIsNaNPoisonedByTheSpike) {
  // The justification for the whole layer: without the guard the spike
  // destroys the entire simulation, parent included, via feedback.
  n::NestedSimulation sim(flat_parent(), wall_params(), three_nests());
  inject_spike(sim.sibling(2).state());
  bool poisoned = false;
  for (int i = 0; i < 30 && !poisoned; ++i) {
    sim.advance(kDt);
    poisoned = !s::all_finite(sim.parent());
  }
  EXPECT_TRUE(poisoned) << "spike was expected to NaN-poison the parent";
}

TEST(GuardedRun, QuarantineMatchesRunWithoutBadSibling) {
  // Acceptance: the guarded run completes, quarantines the bad sibling,
  // and parent + healthy siblings finish bit-identical to a run where the
  // bad sibling never existed.
  n::NestedSimulation sim(flat_parent(), wall_params(), three_nests());
  inject_spike(sim.sibling(2).state());
  r::GuardedRunner guard(sim);
  const auto report = guard.run(kDt, kSteps);

  EXPECT_EQ(report.steps, kSteps);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0], 2u);
  EXPECT_TRUE(sim.sibling_quarantined(2));
  EXPECT_EQ(report.dt_halvings, 1);   // strike 1 at dt, strike 2 at dt/2
  EXPECT_EQ(report.rollbacks, 2);
  EXPECT_DOUBLE_EQ(report.final_dt, kDt);  // quarantine resets the backoff
  EXPECT_TRUE(s::all_finite(sim.parent()));

  auto specs = three_nests();
  specs.pop_back();  // the bad sibling never existed
  n::NestedSimulation ref(flat_parent(), wall_params(), specs);
  ref.run(kDt, kSteps);
  expect_states_equal(sim.parent(), ref.parent(), "parent");
  expect_states_equal(sim.sibling(0).state(), ref.sibling(0).state(), "west");
  expect_states_equal(sim.sibling(1).state(), ref.sibling(1).state(), "east");
}

TEST(GuardedRun, IncidentLogIsGolden) {
  // Lock the full decision sequence in: blowup at dt, rollback, halve,
  // blowup at dt/2, rollback, quarantine — then 12 clean steps.
  // The log embeds %.17g state digests, so byte-exact comparison only
  // holds in the bit-exact tiers; fast-math is tolerance-gated elsewhere
  // (test_swm_fastmath_golden).
  if (nestwx::swm::build_tier().fastmath)
    GTEST_SKIP() << "fast-math tier reassociates FP; golden is exact-tier";
  n::NestedSimulation sim(flat_parent(), wall_params(), three_nests());
  inject_spike(sim.sibling(2).state());
  r::GuardedRunner guard(sim);
  const std::string actual = r::report_to_json(guard.run(kDt, kSteps));

  const std::string path =
      std::string(NESTWX_GOLDEN_DIR) + "/guard_incidents.json";
  if (std::getenv("NESTWX_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_LOG_(INFO) << "regenerated " << path;
    return;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << path
                         << " — run with NESTWX_REGEN_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(actual, expected.str())
      << "guard decisions drifted from the golden incident log";
}

TEST(GuardedRun, DeterministicAcrossThreadCounts) {
  // Acceptance: same states, same incident log, whether siblings run
  // sequentially or on 2 or 8 threads.
  struct Outcome {
    std::string log;
    std::uint64_t parent, s0, s1;
  };
  auto run_with = [&](int threads) {
    n::NestedSimulation sim(flat_parent(), wall_params(), three_nests());
    inject_spike(sim.sibling(2).state());
    std::unique_ptr<nestwx::util::ThreadPool> pool;
    if (threads > 1) {
      pool = std::make_unique<nestwx::util::ThreadPool>(threads);
      sim.set_thread_pool(pool.get());
    }
    r::GuardedRunner guard(sim);
    const auto report = guard.run(kDt, kSteps);
    Outcome o;
    o.log = r::report_to_json(report);
    o.parent = state_hash(sim.parent());
    o.s0 = state_hash(sim.sibling(0).state());
    o.s1 = state_hash(sim.sibling(1).state());
    sim.set_thread_pool(nullptr);
    return o;
  };
  const auto seq = run_with(1);
  for (int threads : {2, 8}) {
    const auto par = run_with(threads);
    EXPECT_EQ(par.log, seq.log) << threads << " threads";
    EXPECT_EQ(par.parent, seq.parent) << threads << " threads";
    EXPECT_EQ(par.s0, seq.s0) << threads << " threads";
    EXPECT_EQ(par.s1, seq.s1) << threads << " threads";
  }
}

TEST(GuardedRun, HalvedDtRescuesMarginallyUnstableRun) {
  // Parent-only run at a dt the monitor rejects (Courant ~1.1): one
  // rollback + one halving, then clean sailing at dt/2.
  n::NestedSimulation sim(flat_parent(), wall_params(), {});
  r::GuardPolicy policy;
  policy.restore_streak = 1000;  // keep the halving for the whole run
  r::GuardedRunner guard(sim, policy);
  const double hot_dt = 63.0;  // 2*c*dt/dx ~ 1.10 for c = sqrt(9.81*500)
  const auto report = guard.run(hot_dt, 10);
  EXPECT_EQ(report.steps, 10);
  EXPECT_EQ(report.dt_halvings, 1);
  EXPECT_EQ(report.rollbacks, 1);
  EXPECT_EQ(report.dt_restorations, 0);
  EXPECT_TRUE(report.quarantined.empty());
  EXPECT_DOUBLE_EQ(report.final_dt, hot_dt / 2.0);
  EXPECT_TRUE(s::all_finite(sim.parent()));
}

TEST(GuardedRun, HealthyStreakRestoresDt) {
  // With a short restore streak the guard keeps probing the nominal dt:
  // halve, run the streak, restore, trip again, halve again.
  n::NestedSimulation sim(flat_parent(), wall_params(), {});
  r::GuardPolicy policy;
  policy.restore_streak = 3;
  r::GuardedRunner guard(sim, policy);
  const auto report = guard.run(63.0, 12);
  EXPECT_EQ(report.steps, 12);
  EXPECT_GE(report.dt_restorations, 1);
  EXPECT_GE(report.dt_halvings, 2);
  EXPECT_TRUE(s::all_finite(sim.parent()));
}

TEST(GuardedRun, PreflightQuarantinesNonFiniteSibling) {
  n::NestedSimulation sim(flat_parent(), wall_params(), three_nests());
  sim.sibling(1).state().h(5, 5) = std::numeric_limits<double>::quiet_NaN();
  r::GuardedRunner guard(sim);
  const auto report = guard.run(kDt, kSteps);
  ASSERT_EQ(report.quarantined.size(), 1u);
  EXPECT_EQ(report.quarantined[0], 1u);
  ASSERT_FALSE(report.incidents.empty());
  EXPECT_EQ(report.incidents[0].kind, r::IncidentKind::preflight_quarantine);
  EXPECT_EQ(report.rollbacks, 0);  // caught before any stepping

  auto specs = three_nests();
  specs.erase(specs.begin() + 1);
  n::NestedSimulation ref(flat_parent(), wall_params(), specs);
  ref.run(kDt, kSteps);
  expect_states_equal(sim.parent(), ref.parent(), "parent");
}

TEST(GuardedRun, HopelessParentExhaustsRetriesAndWritesLog) {
  // A parent spike with no halvings or escalations allowed: the retry
  // budget runs out and the incident log is still flushed to disk.
  auto parent = flat_parent();
  inject_spike(parent);
  n::NestedSimulation sim(std::move(parent), wall_params(), {});
  r::GuardPolicy policy;
  policy.max_backoff = 0;
  policy.max_escalations = 0;
  policy.max_retries = 2;
  policy.incident_log = tmp_path("nestwx_guard_fail.json");
  r::GuardedRunner guard(sim, policy);
  EXPECT_THROW(guard.run(kDt, kSteps), r::BlowupError);
  std::ifstream in(policy.incident_log);
  ASSERT_TRUE(in.good()) << "incident log must be written on failure too";
  std::ostringstream log;
  log << in.rdbuf();
  EXPECT_NE(log.str().find("\"kind\": \"blowup\""), std::string::npos);
  EXPECT_NE(log.str().find("\"kind\": \"rollback\""), std::string::npos);
  std::remove(policy.incident_log.c_str());
}

TEST(GuardedRun, ViscosityEscalationEngagesWhenHalvingIsExhausted) {
  auto parent = flat_parent();
  inject_spike(parent);
  n::NestedSimulation sim(std::move(parent), wall_params(), {});
  r::GuardPolicy policy;
  policy.max_backoff = 0;       // no halvings: escalation is the only move
  policy.max_escalations = 1;
  policy.max_retries = 3;
  policy.viscosity_floor = 50.0;
  policy.incident_log = tmp_path("nestwx_guard_visc.json");
  r::GuardedRunner guard(sim, policy);
  EXPECT_THROW(guard.run(kDt, kSteps), r::BlowupError);
  EXPECT_DOUBLE_EQ(sim.params().viscosity, 50.0);
  std::ifstream in(policy.incident_log);
  ASSERT_TRUE(in.good());
  std::ostringstream log;
  log << in.rdbuf();
  EXPECT_NE(log.str().find("\"kind\": \"viscosity_raised\""),
            std::string::npos);
  std::remove(policy.incident_log.c_str());
}

TEST(GuardedRun, OnDiskCheckpointsUseTheHardenedFormat) {
  n::NestedSimulation sim(flat_parent(), wall_params(),
                          {three_nests().front()});
  r::GuardPolicy policy;
  policy.checkpoint_every = 4;
  policy.checkpoint_prefix = tmp_path("nestwx_guard_ckpt");
  r::GuardedRunner guard(sim, policy);
  const auto report = guard.run(kDt, 8);
  EXPECT_EQ(report.checkpoints, 2);  // steps 4 and 8
  // The final checkpoint is the final state, loadable and checksummed.
  const auto parent_back =
      nestwx::iosim::load_checkpoint(policy.checkpoint_prefix +
                                     "_parent.ckpt");
  expect_states_equal(parent_back, sim.parent(), "parent checkpoint");
  const auto child_back = nestwx::iosim::load_checkpoint(
      policy.checkpoint_prefix + "_s0.ckpt");
  expect_states_equal(child_back, sim.sibling(0).state(), "child checkpoint");
  std::remove((policy.checkpoint_prefix + "_parent.ckpt").c_str());
  std::remove((policy.checkpoint_prefix + "_s0.ckpt").c_str());
}

TEST(GuardedRun, RejectsBadPolicy) {
  n::NestedSimulation sim(flat_parent(), wall_params(), {});
  r::GuardPolicy policy;
  policy.snapshot_ring = 0;
  EXPECT_THROW(r::GuardedRunner(sim, policy), nestwx::util::PreconditionError);
  policy = {};
  policy.viscosity_boost = 0.5;
  EXPECT_THROW(r::GuardedRunner(sim, policy), nestwx::util::PreconditionError);
}

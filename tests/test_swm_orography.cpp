/// Flow-over-terrain tests: a balanced channel flow crossing a submerged
/// ridge must develop a stationary disturbance anchored to the ridge —
/// the shallow-water analogue of orographic (lee) waves — while staying
/// stable and mass-conserving.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "swm/diagnostics.hpp"
#include "swm/dynamics.hpp"
#include "swm/init.hpp"

namespace s = nestwx::swm;

namespace {

/// Channel with an eastward flow of u0 over a ridge centered at
/// x-fraction rx spanning the full channel width.
s::State ridge_channel(int nx, int ny, double u0, double ridge_height,
                       double rx = 0.5) {
  s::GridSpec g;
  g.nx = nx;
  g.ny = ny;
  g.dx = g.dy = 5e3;
  auto st = s::lake_at_rest(g, 200.0);
  const double f = 1e-4;
  s::add_zonal_flow(st, f, u0);
  const double cx = rx * nx;
  for (int j = -g.halo; j < ny + g.halo; ++j)
    for (int i = -g.halo; i < nx + g.halo; ++i) {
      const double d = (i + 0.5 - cx) / 4.0;  // ridge half-width 4 cells
      const double b = ridge_height * std::exp(-d * d);
      st.b(i, j) = b;
      st.h(i, j) -= b;  // undisturbed free surface
    }
  return st;
}

s::ModelParams channel_params() {
  s::ModelParams p;
  p.coriolis = 1e-4;
  p.viscosity = 150.0;
  p.boundary = s::BoundaryKind::channel;
  return p;
}

}  // namespace

TEST(Orography, NoFlowOverRidgeStaysBalanced) {
  auto st = ridge_channel(96, 32, 0.0, 40.0);
  auto p = channel_params();
  p.coriolis = 0.0;
  s::Stepper stepper(st.grid, p);
  stepper.run(st, 10.0, 100);
  EXPECT_LT(st.u.interior_max_abs(), 1e-9);
  EXPECT_LT(st.v.interior_max_abs(), 1e-9);
}

TEST(Orography, FlowOverRidgeCreatesStationaryDisturbance) {
  auto st = ridge_channel(96, 32, 5.0, 40.0);
  const auto p = channel_params();
  s::Stepper stepper(st.grid, p);
  const double dt = stepper.stable_dt(st, 0.4);
  stepper.run(st, dt, 400);
  ASSERT_TRUE(s::all_finite(st));
  // The free surface near the ridge departs from the zonal background;
  // far upstream it stays close to it.
  auto row_anomaly = [&](int i) {
    double mean = 0.0;
    for (int ii = 0; ii < st.grid.nx; ++ii) mean += st.eta(ii, 16);
    mean /= st.grid.nx;
    return std::abs(st.eta(i, 16) - mean);
  };
  const double at_ridge = row_anomaly(48);
  const double upstream = row_anomaly(8);
  EXPECT_GT(at_ridge, 2.0 * upstream);
  EXPECT_GT(at_ridge, 0.2);  // a real signal, in meters
}

TEST(Orography, TimeMeanDisturbanceIsAnchoredToRidge) {
  // The impulsive start launches gravity waves that circulate in the
  // periodic channel indefinitely; the *time-mean* anomaly over one
  // circuit isolates the stationary, terrain-locked response.
  auto st = ridge_channel(96, 32, 5.0, 40.0);
  const auto p = channel_params();
  s::Stepper stepper(st.grid, p);
  const double dt = stepper.stable_dt(st, 0.4);
  stepper.run(st, dt, 200);  // brief spin-up
  // One circuit of the fastest wave (c ≈ √(gH) ≈ 44 m/s) around the
  // 480 km channel takes ≈ 10900 s; average over it.
  const int avg_steps =
      static_cast<int>(96.0 * st.grid.dx / std::sqrt(9.81 * 200.0) / dt);
  std::vector<double> mean_eta(static_cast<std::size_t>(st.grid.nx), 0.0);
  for (int k = 0; k < avg_steps; ++k) {
    stepper.step(st, dt);
    for (int i = 0; i < st.grid.nx; ++i) mean_eta[i] += st.eta(i, 16);
  }
  for (double& v : mean_eta) v /= avg_steps;
  double zonal = 0.0;
  for (double v : mean_eta) zonal += v;
  zonal /= st.grid.nx;
  int best_i = 0;
  double best = 0.0;
  for (int i = 0; i < st.grid.nx; ++i) {
    const double a = std::abs(mean_eta[i] - zonal);
    if (a > best) {
      best = a;
      best_i = i;
    }
  }
  // The ridge sits at i = 48; the stationary response peaks near it.
  EXPECT_NEAR(best_i, 48, 10);
  EXPECT_GT(best, 0.1);
}

TEST(Orography, MassConservedInChannel) {
  auto st = ridge_channel(64, 24, 4.0, 30.0);
  const auto p = channel_params();
  s::Stepper stepper(st.grid, p);
  const double mass0 = s::diagnose(st).mass;
  const double dt = stepper.stable_dt(st, 0.4);
  stepper.run(st, dt, 300);
  EXPECT_NEAR(s::diagnose(st).mass / mass0, 1.0, 1e-9);
}

TEST(Orography, TallerRidgeMakesStrongerDisturbance) {
  auto run = [&](double height) {
    auto st = ridge_channel(96, 32, 5.0, height);
    const auto p = channel_params();
    s::Stepper stepper(st.grid, p);
    const double dt = stepper.stable_dt(st, 0.4);
    stepper.run(st, dt, 300);
    double mean = 0.0;
    for (int i = 0; i < st.grid.nx; ++i) mean += st.eta(i, 16);
    mean /= st.grid.nx;
    double best = 0.0;
    for (int i = 40; i < 60; ++i)
      best = std::max(best, std::abs(st.eta(i, 16) - mean));
    return best;
  };
  EXPECT_GT(run(60.0), run(15.0));
}

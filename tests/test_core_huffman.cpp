#include "core/huffman.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace c = nestwx::core;
using nestwx::util::PreconditionError;

TEST(Huffman, SingleWeightIsLeafRoot) {
  const auto t = c::build_huffman(std::vector<double>{1.0});
  EXPECT_EQ(t.nodes.size(), 1u);
  EXPECT_TRUE(t.node(t.root).is_leaf());
  EXPECT_EQ(t.node(t.root).leaf_id, 0);
}

TEST(Huffman, TwoWeightsMergeUnderRoot) {
  const auto t = c::build_huffman(std::vector<double>{0.3, 0.7});
  EXPECT_EQ(t.nodes.size(), 3u);
  EXPECT_FALSE(t.node(t.root).is_leaf());
  EXPECT_DOUBLE_EQ(t.node(t.root).weight, 1.0);
}

TEST(Huffman, NodeAndLeafCounts) {
  for (int k = 1; k <= 10; ++k) {
    std::vector<double> w(k, 1.0);
    const auto t = c::build_huffman(w);
    EXPECT_EQ(t.nodes.size(), static_cast<std::size_t>(2 * k - 1));
    EXPECT_EQ(t.leaves_under(t.root).size(), static_cast<std::size_t>(k));
  }
}

TEST(Huffman, RootWeightIsTotal) {
  const std::vector<double> w{0.15, 0.3, 0.35, 0.2};
  const auto t = c::build_huffman(w);
  EXPECT_NEAR(t.weight_under(t.root), 1.0, 1e-12);
}

TEST(Huffman, InternalWeightsAreChildSums) {
  const std::vector<double> w{1, 2, 3, 4, 5};
  const auto t = c::build_huffman(w);
  for (const auto& n : t.nodes) {
    if (n.is_leaf()) continue;
    EXPECT_DOUBLE_EQ(n.weight,
                     t.nodes[n.left].weight + t.nodes[n.right].weight);
  }
}

TEST(Huffman, EveryLeafAppearsExactlyOnce) {
  const std::vector<double> w{5, 1, 4, 2, 3, 6, 7};
  const auto t = c::build_huffman(w);
  auto leaves = t.leaves_under(t.root);
  std::sort(leaves.begin(), leaves.end());
  for (std::size_t i = 0; i < w.size(); ++i)
    EXPECT_EQ(leaves[i], static_cast<int>(i));
}

TEST(Huffman, LightestPairMergesFirst) {
  // Classic property: the two smallest weights become siblings at the
  // deepest level.
  const std::vector<double> w{0.05, 0.5, 0.06, 0.39};
  const auto t = c::build_huffman(w);
  // Find the parent of leaf 0 (weight 0.05); its other child must be
  // leaf 2 (weight 0.06).
  for (const auto& n : t.nodes) {
    if (n.is_leaf()) continue;
    const bool has0 = t.nodes[n.left].leaf_id == 0 ||
                      t.nodes[n.right].leaf_id == 0;
    if (has0) {
      const bool has2 = t.nodes[n.left].leaf_id == 2 ||
                        t.nodes[n.right].leaf_id == 2;
      if (t.nodes[n.left].is_leaf() && t.nodes[n.right].is_leaf()) {
        EXPECT_TRUE(has2);
        return;
      }
    }
  }
}

TEST(Huffman, BfsOrderStartsAtRootAndCoversInternals) {
  const std::vector<double> w{1, 2, 3, 4};
  const auto t = c::build_huffman(w);
  const auto order = t.internal_bfs_order();
  EXPECT_EQ(order.size(), 3u);
  EXPECT_EQ(order.front(), t.root);
  // BFS property: each node's parent appears earlier.
  for (std::size_t i = 1; i < order.size(); ++i) {
    bool parent_earlier = false;
    for (std::size_t j = 0; j < i; ++j) {
      const auto& p = t.node(order[j]);
      if (p.left == order[i] || p.right == order[i]) parent_earlier = true;
    }
    EXPECT_TRUE(parent_earlier);
  }
}

TEST(Huffman, BalancedChildrenForEqualWeights) {
  const std::vector<double> w(8, 1.0);
  const auto t = c::build_huffman(w);
  const auto& root = t.node(t.root);
  EXPECT_DOUBLE_EQ(t.weight_under(root.left), t.weight_under(root.right));
}

TEST(Huffman, DeterministicAcrossCalls) {
  nestwx::util::Rng rng(21);
  std::vector<double> w;
  for (int i = 0; i < 12; ++i) w.push_back(rng.uniform(0.1, 2.0));
  const auto t1 = c::build_huffman(w);
  const auto t2 = c::build_huffman(w);
  ASSERT_EQ(t1.nodes.size(), t2.nodes.size());
  for (std::size_t i = 0; i < t1.nodes.size(); ++i) {
    EXPECT_EQ(t1.nodes[i].left, t2.nodes[i].left);
    EXPECT_EQ(t1.nodes[i].right, t2.nodes[i].right);
    EXPECT_EQ(t1.nodes[i].leaf_id, t2.nodes[i].leaf_id);
  }
}

TEST(Huffman, RejectsBadWeights) {
  EXPECT_THROW(c::build_huffman({}), PreconditionError);
  EXPECT_THROW(c::build_huffman(std::vector<double>{1.0, 0.0}),
               PreconditionError);
  EXPECT_THROW(c::build_huffman(std::vector<double>{1.0, -2.0}),
               PreconditionError);
}

TEST(Huffman, LeavesUnderSubtreeAreConsistent) {
  const std::vector<double> w{0.15, 0.3, 0.35, 0.2};
  const auto t = c::build_huffman(w);
  const auto& root = t.node(t.root);
  auto left = t.leaves_under(root.left);
  auto right = t.leaves_under(root.right);
  EXPECT_EQ(left.size() + right.size(), w.size());
  double wl = 0, wr = 0;
  for (int id : left) wl += w[id];
  for (int id : right) wr += w[id];
  EXPECT_NEAR(wl, t.weight_under(root.left), 1e-12);
  EXPECT_NEAR(wr, t.weight_under(root.right), 1e-12);
}

#include <gtest/gtest.h>

#include <cmath>

#include "swm/diagnostics.hpp"
#include "swm/dynamics.hpp"
#include "swm/init.hpp"
#include "util/rng.hpp"

namespace s = nestwx::swm;

namespace {
struct Scenario {
  const char* name;
  double depth;
  double dt;
  int steps;
  double coriolis;
  bool nonlinear;
};
}  // namespace

class ConservationTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(ConservationTest, MassConservedWithPeriodicBoundaries) {
  const auto sc = GetParam();
  s::GridSpec g;
  g.nx = 40;
  g.ny = 40;
  g.dx = g.dy = 2e3;
  auto state = s::lake_at_rest(g, sc.depth);
  nestwx::util::Rng rng(99);
  s::perturb(state, rng, 0.01 * sc.depth);
  s::ModelParams p;
  p.coriolis = sc.coriolis;
  p.nonlinear = sc.nonlinear;
  p.boundary = s::BoundaryKind::periodic;
  s::Stepper stepper(g, p);
  const double mass0 = s::diagnose(state).mass;
  stepper.run(state, sc.dt, sc.steps);
  ASSERT_TRUE(s::all_finite(state)) << sc.name;
  EXPECT_NEAR(s::diagnose(state).mass / mass0, 1.0, 1e-10) << sc.name;
}

TEST_P(ConservationTest, EnergyBoundedOverTime) {
  const auto sc = GetParam();
  s::GridSpec g;
  g.nx = 40;
  g.ny = 40;
  g.dx = g.dy = 2e3;
  auto state = s::lake_at_rest(g, sc.depth);
  nestwx::util::Rng rng(7);
  s::perturb(state, rng, 0.01 * sc.depth);
  s::ModelParams p;
  p.coriolis = sc.coriolis;
  p.nonlinear = sc.nonlinear;
  p.viscosity = 20.0;
  p.boundary = s::BoundaryKind::periodic;
  s::Stepper stepper(g, p);
  const double e0 = s::diagnose(state).total_energy;
  stepper.run(state, sc.dt, sc.steps);
  const double e1 = s::diagnose(state).total_energy;
  // With weak dissipation energy must not grow beyond roundoff slack.
  EXPECT_LE(e1, e0 * (1.0 + 1e-6)) << sc.name;
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, ConservationTest,
    ::testing::Values(
        Scenario{"shallow-linear", 50.0, 20.0, 100, 0.0, false},
        Scenario{"deep-linear", 1000.0, 5.0, 100, 0.0, false},
        Scenario{"rotating", 200.0, 10.0, 150, 1e-4, false},
        Scenario{"nonlinear", 200.0, 10.0, 150, 1e-4, true},
        Scenario{"long-run", 100.0, 15.0, 400, 5e-5, true}),
    [](const auto& info) {
      std::string n = info.param.name;
      for (auto& ch : n)
        if (ch == '-') ch = '_';
      return n;
    });

TEST(Conservation, MassExactWithWalls) {
  s::GridSpec g;
  g.nx = 30;
  g.ny = 20;
  g.dx = g.dy = 1e3;
  auto state = s::lake_at_rest(g, 80.0);
  state.h(5, 5) += 2.0;
  s::ModelParams p;
  p.boundary = s::BoundaryKind::wall;
  s::Stepper stepper(g, p);
  const double mass0 = s::diagnose(state).mass;
  stepper.run(state, 4.0, 200);
  EXPECT_NEAR(s::diagnose(state).mass / mass0, 1.0, 1e-9);
}

TEST(Conservation, SymmetricInitialConditionStaysSymmetric) {
  // x-mirror symmetry of the initial state is preserved by the scheme.
  s::GridSpec g;
  g.nx = 32;
  g.ny = 32;
  g.dx = g.dy = 1e3;
  auto state = s::lake_at_rest(g, 100.0);
  for (int j = 0; j < g.ny; ++j)
    for (int i = 0; i < g.nx; ++i) {
      const double xm = (i + 0.5) - g.nx / 2.0;
      const double ym = (j + 0.5) - g.ny / 2.0;
      state.h(i, j) += std::exp(-(xm * xm + ym * ym) / 10.0);
    }
  s::ModelParams p;
  p.coriolis = 0.0;
  p.nonlinear = false;
  p.boundary = s::BoundaryKind::periodic;
  s::Stepper stepper(g, p);
  stepper.run(state, 5.0, 60);
  for (int j = 0; j < g.ny; ++j)
    for (int i = 0; i < g.nx / 2; ++i)
      EXPECT_NEAR(state.h(i, j), state.h(g.nx - 1 - i, j), 1e-10)
          << i << "," << j;
}

#include "netsim/event_model.hpp"

#include <gtest/gtest.h>

#include "procgrid/decomp.hpp"
#include "procgrid/grid2d.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workload/machines.hpp"

namespace n = nestwx::netsim;
namespace c = nestwx::core;

namespace {
struct Rig {
  nestwx::topo::MachineParams machine = nestwx::workload::bluegene_l(128);
  nestwx::procgrid::Grid2D grid =
      nestwx::procgrid::choose_grid(128, 100, 100);
  c::Mapping mapping = c::make_mapping(machine, grid, c::MapScheme::xyzt);
  n::EventPhaseSimulator sim{machine};
  n::PhaseSimulator static_sim{machine};
};
}  // namespace

TEST(EventModel, EmptyPhaseIsFree) {
  Rig r;
  const auto st = r.sim.run(r.mapping, {});
  EXPECT_DOUBLE_EQ(st.duration, 0.0);
}

TEST(EventModel, SingleMessageMatchesFirstPrinciples) {
  Rig r;
  const std::vector<n::Message> msgs{{0, 1, 1e6}};  // 1 hop
  const auto st = r.sim.run(r.mapping, msgs);
  const auto& m = r.machine;
  const double expected = m.software_latency + 1e6 / m.pack_bandwidth +
                          1e6 / m.link_bandwidth + m.hop_latency +
                          1e6 / m.pack_bandwidth;
  EXPECT_NEAR(st.duration, expected, 1e-12);
}

TEST(EventModel, ContendingMessagesSerialiseOnTheSharedLink) {
  Rig r;
  // Two messages into rank 2 through the link 1->2.
  const std::vector<n::Message> msgs{{0, 2, 1e6}, {1, 2, 1e6}};
  const auto both = r.sim.run(r.mapping, msgs);
  const auto solo =
      r.sim.run(r.mapping, std::vector<n::Message>{{0, 2, 1e6}});
  // The second transfer queues a full serialisation time behind the
  // first on the shared link.
  EXPECT_GT(both.duration,
            solo.duration + 0.9 * 1e6 / r.machine.link_bandwidth);
}

TEST(EventModel, DisjointRoutesDoNotInteract) {
  Rig r;
  const auto solo =
      r.sim.run(r.mapping, std::vector<n::Message>{{0, 1, 1e6}});
  const auto pair = r.sim.run(
      r.mapping, std::vector<n::Message>{{0, 1, 1e6}, {8, 9, 1e6}});
  EXPECT_NEAR(pair.duration, solo.duration, 1e-12);
}

TEST(EventModel, DeterministicRegardlessOfInputOrder) {
  Rig r;
  nestwx::util::Rng rng(5);
  std::vector<n::Message> msgs;
  for (int i = 0; i < 60; ++i) {
    const int a = static_cast<int>(rng.uniform_int(0, 127));
    int b = static_cast<int>(rng.uniform_int(0, 127));
    if (b == a) b = (a + 1) % 128;
    msgs.push_back({a, b, rng.uniform(1e3, 1e6)});
  }
  auto shuffled = msgs;
  std::reverse(shuffled.begin(), shuffled.end());
  const auto x = r.sim.run(r.mapping, msgs);
  const auto y = r.sim.run(r.mapping, shuffled);
  EXPECT_DOUBLE_EQ(x.duration, y.duration);
  EXPECT_DOUBLE_EQ(x.total_wait, y.total_wait);
}

TEST(EventModel, StaticModelIsAReasonableApproximation) {
  // On a realistic halo pattern the calibrated static model must land
  // within a small factor of the event-driven reference — the validation
  // that justifies using the cheap model in the driver.
  Rig r;
  nestwx::procgrid::Decomposition dec(286, 307, r.grid);
  std::vector<n::Message> msgs;
  for (const auto& h : dec.halo_messages(r.machine.halo_width))
    msgs.push_back({h.src_rank, h.dst_rank,
                    r.static_sim.halo_message_bytes(h.elements)});
  const auto ev = r.sim.run(r.mapping, msgs);
  const auto st = r.static_sim.run(r.mapping, msgs);
  EXPECT_GT(ev.duration, 0.0);
  EXPECT_GT(st.duration, 0.0);
  const double ratio = ev.duration / st.duration;
  // The event model has no virtual channels, so under the oblivious
  // mapping's heavy link sharing it over-serialises relative to a real
  // torus; the calibrated static model sits between the uncontended and
  // fully-serialised extremes. Bound the ratio loosely here and see
  // bench_comm_models for the per-mapping numbers (topology-aware
  // mappings land near 2x).
  EXPECT_GT(ratio, 0.3) << "static model far too pessimistic";
  EXPECT_LT(ratio, 8.0) << "static model far too optimistic";
}

TEST(EventModel, QueueDepthReflectsHotspots) {
  Rig r;
  // All-to-one: the links near rank 0 become hotspots.
  std::vector<n::Message> hot;
  for (int s = 1; s <= 16; ++s) hot.push_back({s, 0, 1e5});
  const auto hot_stats = r.sim.run(r.mapping, hot);
  // Pairwise-disjoint traffic keeps queues shallow.
  std::vector<n::Message> cool;
  for (int s = 0; s < 16; s += 2) cool.push_back({s, s + 1, 1e5});
  const auto cool_stats = r.sim.run(r.mapping, cool);
  EXPECT_GT(hot_stats.max_queue_depth, cool_stats.max_queue_depth);
}

TEST(EventModel, RejectsBadInput) {
  Rig r;
  EXPECT_THROW(r.sim.run(r.mapping, std::vector<n::Message>{{0, 999, 1.0}}),
               nestwx::util::PreconditionError);
}

#include "swm/dynamics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "swm/diagnostics.hpp"
#include "swm/init.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace s = nestwx::swm;
using nestwx::util::PreconditionError;

namespace {
s::GridSpec small_grid(int n = 32, double dx = 1e3) {
  s::GridSpec g;
  g.nx = n;
  g.ny = n;
  g.dx = dx;
  g.dy = dx;
  return g;
}
}  // namespace

TEST(Dynamics, LakeAtRestStaysAtRest) {
  const auto g = small_grid();
  auto state = s::lake_at_rest(g, 500.0);
  s::ModelParams p;
  p.boundary = s::BoundaryKind::periodic;
  s::Stepper stepper(g, p);
  stepper.run(state, 5.0, 50);
  EXPECT_LT(state.u.interior_max_abs(), 1e-12);
  EXPECT_LT(state.v.interior_max_abs(), 1e-12);
  for (int j = 0; j < g.ny; ++j)
    for (int i = 0; i < g.nx; ++i)
      EXPECT_NEAR(state.h(i, j), 500.0, 1e-10);
}

TEST(Dynamics, WellBalancedOverTerrain) {
  // Flat free surface over a terrain bump must remain motionless.
  const auto g = small_grid();
  auto state = s::lake_over_terrain(g, 800.0, 150.0);
  s::ModelParams p;
  p.boundary = s::BoundaryKind::periodic;
  s::Stepper stepper(g, p);
  stepper.run(state, 2.0, 50);
  EXPECT_LT(state.u.interior_max_abs(), 1e-9);
  EXPECT_LT(state.v.interior_max_abs(), 1e-9);
}

TEST(Dynamics, GravityWaveSpeedIsRoughlyCorrect) {
  // A small bump spreads at c = sqrt(g·H); after t seconds the front is
  // near r = c·t. Track where the perturbation amplitude falls off.
  s::GridSpec g = small_grid(128, 1e3);
  auto state = s::lake_at_rest(g, 100.0);  // c ≈ 31.3 m/s
  const int cx = 64, cy = 64;
  for (int j = 0; j < g.ny; ++j)
    for (int i = 0; i < g.nx; ++i) {
      const double r2 = (i - cx) * (i - cx) + (j - cy) * (j - cy);
      state.h(i, j) += 0.5 * std::exp(-r2 / 16.0);
    }
  s::ModelParams p;
  p.coriolis = 0.0;
  p.nonlinear = false;
  p.boundary = s::BoundaryKind::periodic;
  s::Stepper stepper(g, p);
  const double dt = 10.0;
  const int steps = 100;  // t = 1000 s → front at ~31 km ≈ 31 cells
  stepper.run(state, dt, steps);
  // Perturbation near the center should have radiated away…
  EXPECT_LT(std::abs(state.h(cx, cy) - 100.0), 0.1);
  // …and reached at least 25 cells out but not 60.
  double amp_25 = 0.0, amp_60 = 0.0;
  for (int i = 0; i < g.nx; ++i) {
    const double r = std::abs(i - cx);
    const double dev = std::abs(state.h(i, cy) - 100.0);
    if (r > 23 && r < 35) amp_25 = std::max(amp_25, dev);
    if (r > 55) amp_60 = std::max(amp_60, dev);
  }
  EXPECT_GT(amp_25, 1e-4);
  EXPECT_LT(amp_60, 1e-4);
}

TEST(Dynamics, GeostrophicVortexPersists) {
  // A balanced depression should survive many steps without collapsing.
  s::GridSpec g = small_grid(64, 4e3);
  const double f = 1e-4;
  auto state = s::depression(g, f, 0.5, 0.5, 1000.0, 20.0, 40e3);
  const auto before = s::find_min_eta(state);
  s::ModelParams p;
  p.coriolis = f;
  p.boundary = s::BoundaryKind::periodic;
  s::Stepper stepper(g, p);
  const double dt = stepper.stable_dt(state, 0.5);
  stepper.run(state, dt, 200);
  EXPECT_TRUE(s::all_finite(state));
  const auto after = s::find_min_eta(state);
  // Depression still present (at least half its initial depth anomaly)…
  EXPECT_LT(after.eta, 1000.0 - 8.0);
  // …and still near the center.
  EXPECT_NEAR(after.i, before.i, 8);
  EXPECT_NEAR(after.j, before.j, 8);
}

TEST(Dynamics, ViscosityDampsNoise) {
  s::GridSpec g = small_grid(48, 1e3);
  auto noisy = s::lake_at_rest(g, 200.0);
  nestwx::util::Rng rng(4);
  s::perturb(noisy, rng, 0.5);
  auto smooth = noisy;  // same initial condition

  s::ModelParams p0;
  p0.coriolis = 0.0;
  p0.boundary = s::BoundaryKind::periodic;
  s::ModelParams p1 = p0;
  p1.viscosity = 200.0;
  s::Stepper st0(g, p0), st1(g, p1);
  st0.run(noisy, 5.0, 40);
  st1.run(smooth, 5.0, 40);
  const auto d0 = s::diagnose(noisy);
  const auto d1 = s::diagnose(smooth);
  EXPECT_LT(d1.kinetic_energy, d0.kinetic_energy);
}

TEST(Dynamics, DragDampsMomentum) {
  s::GridSpec g = small_grid();
  auto state = s::lake_at_rest(g, 300.0);
  state.u.fill(1.0);
  s::ModelParams p;
  p.coriolis = 0.0;
  p.drag = 1e-3;
  p.boundary = s::BoundaryKind::periodic;
  s::Stepper stepper(g, p);
  stepper.run(state, 10.0, 50);  // t = 500 s, e-folding 1000 s
  const double mean_u = state.u.interior_sum() /
                        (static_cast<double>(g.nx + 1) * g.ny);
  EXPECT_LT(mean_u, 0.75);
  EXPECT_GT(mean_u, 0.45);  // ≈ exp(-0.5) = 0.61
}

TEST(Dynamics, WallsReflectInsteadOfLeaking) {
  s::GridSpec g = small_grid(48, 1e3);
  auto state = s::lake_at_rest(g, 100.0);
  state.h(10, 24) += 1.0;
  s::ModelParams p;
  p.coriolis = 0.0;
  p.boundary = s::BoundaryKind::wall;
  s::Stepper stepper(g, p);
  const double mass0 = s::diagnose(state).mass;
  stepper.run(state, 5.0, 100);
  EXPECT_TRUE(s::all_finite(state));
  // Mass conserved to numerical precision with walls.
  EXPECT_NEAR(s::diagnose(state).mass / mass0, 1.0, 1e-9);
}

TEST(Dynamics, CourantScalesWithDt) {
  const auto g = small_grid();
  auto state = s::lake_at_rest(g, 400.0);
  s::ModelParams p;
  s::Stepper stepper(g, p);
  const double c1 = stepper.courant(state, 1.0);
  const double c2 = stepper.courant(state, 2.0);
  EXPECT_NEAR(c2, 2.0 * c1, 1e-12);
  EXPECT_GT(c1, 0.0);
}

TEST(Dynamics, StableDtRespectsLimit) {
  const auto g = small_grid();
  auto state = s::lake_at_rest(g, 400.0);
  s::ModelParams p;
  s::Stepper stepper(g, p);
  const double dt = stepper.stable_dt(state, 0.8);
  EXPECT_NEAR(stepper.courant(state, dt), 0.8, 1e-9);
}

TEST(Dynamics, RejectsBadSteps) {
  const auto g = small_grid();
  auto state = s::lake_at_rest(g);
  s::ModelParams p;
  s::Stepper stepper(g, p);
  EXPECT_THROW(stepper.step(state, 0.0), PreconditionError);
  EXPECT_THROW(stepper.step(state, -1.0), PreconditionError);
  auto wrong = s::lake_at_rest(small_grid(16));
  EXPECT_THROW(stepper.step(wrong, 1.0), PreconditionError);
}

/// Driver coverage for configurations with second-level nests
/// (paper §4.1.1): planning, timing composition and strategy comparison.

#include <gtest/gtest.h>

#include "core/planner.hpp"
#include "util/error.hpp"
#include "workload/configs.hpp"
#include "workload/machines.hpp"
#include "wrfsim/driver.hpp"

namespace c = nestwx::core;
namespace w = nestwx::workload;
namespace ws = nestwx::wrfsim;

namespace {
const nestwx::topo::MachineParams& machine() {
  static const auto m = w::bluegene_l(1024);
  return m;
}
const c::DelaunayPerfModel& model() {
  static const auto mod = c::DelaunayPerfModel::fit(
      ws::profile_basis(machine(), c::default_basis_domains()));
  return mod;
}
}  // namespace

TEST(SecondLevelConfig, ShapeAndContainment) {
  const auto cfg = w::sea_second_level_config();
  EXPECT_EQ(cfg.siblings.size(), 2u);
  ASSERT_EQ(cfg.second_level.size(), 3u);
  EXPECT_EQ(cfg.children_of(0).size(), 2u);
  EXPECT_EQ(cfg.children_of(1).size(), 1u);
  for (const auto& child : cfg.second_level) {
    const auto& host = cfg.siblings[child.sibling];
    const nestwx::procgrid::Rect host_rect{0, 0, host.nx, host.ny};
    EXPECT_TRUE(host_rect.contains(child.spec.parent_footprint()))
        << child.spec.name;
    EXPECT_DOUBLE_EQ(child.spec.resolution_km, host.resolution_km / 3.0);
  }
}

TEST(SecondLevelConfig, AddRejectsBadInputs) {
  auto cfg = w::fig15_config();
  EXPECT_THROW(w::add_second_level(cfg, 5, 50, 50),
               nestwx::util::PreconditionError);
  EXPECT_THROW(w::add_second_level(cfg, 0, 5000, 5000),
               nestwx::util::PreconditionError);
}

TEST(SecondLevelPlan, ChildPartitionsTileSiblingRects) {
  const auto cfg = w::sea_second_level_config();
  const auto plan = c::plan_execution(machine(), cfg, model(),
                                      c::Strategy::concurrent);
  ASSERT_EQ(plan.child_partitions.size(), 2u);
  ASSERT_TRUE(plan.child_partitions[0].has_value());
  ASSERT_TRUE(plan.child_partitions[1].has_value());
  EXPECT_TRUE(plan.child_partitions[0]->is_exact_tiling());
  EXPECT_EQ(plan.child_partitions[0]->grid, plan.partition->rects[0]);
  EXPECT_EQ(plan.child_partitions[0]->rects.size(), 2u);
  EXPECT_EQ(plan.child_partitions[1]->rects.size(), 1u);
}

TEST(SecondLevelPlan, SequentialPlanSkipsChildPartitions) {
  const auto cfg = w::sea_second_level_config();
  const auto plan = c::plan_execution(machine(), cfg, model(),
                                      c::Strategy::sequential,
                                      c::Allocator::huffman,
                                      c::MapScheme::txyz);
  EXPECT_TRUE(plan.child_partitions.empty());
}

TEST(SecondLevelRun, ChildrenIncreaseNestPhase) {
  auto with_children = w::sea_second_level_config();
  auto without = with_children;
  without.second_level.clear();
  const auto plan_with = c::plan_execution(machine(), with_children,
                                           model(), c::Strategy::concurrent);
  const auto plan_without = c::plan_execution(
      machine(), without, model(), c::Strategy::concurrent);
  const auto r_with =
      ws::simulate_run(machine(), with_children, plan_with);
  const auto r_without =
      ws::simulate_run(machine(), without, plan_without);
  EXPECT_GT(r_with.nest_phase, 1.5 * r_without.nest_phase);
}

TEST(SecondLevelRun, ConcurrentBeatsSequentialWithTwoLevels) {
  const auto cfg = w::sea_second_level_config();
  const auto cmp = ws::compare_strategies(machine(), cfg, model());
  EXPECT_LT(cmp.concurrent_oblivious.integration,
            cmp.sequential.integration);
  EXPECT_LT(cmp.concurrent_aware.integration,
            cmp.sequential.integration);
}

TEST(SecondLevelRun, InnermostOutputAddsIo) {
  const auto cfg = w::sea_second_level_config();
  ws::RunOptions opt;
  opt.with_io = true;
  const auto plan = c::plan_execution(machine(), cfg, model(),
                                      c::Strategy::concurrent);
  auto no_children = cfg;
  no_children.second_level.clear();
  const auto plan2 = c::plan_execution(machine(), no_children, model(),
                                       c::Strategy::concurrent);
  const auto with = ws::simulate_run(machine(), cfg, plan, opt);
  const auto without = ws::simulate_run(machine(), no_children, plan2, opt);
  EXPECT_GT(with.io_time, without.io_time);
}

TEST(SecondLevelRun, IntegrationStillDecomposesExactly) {
  const auto cfg = w::sea_second_level_config();
  const auto plan = c::plan_execution(machine(), cfg, model(),
                                      c::Strategy::concurrent);
  const auto r = ws::simulate_run(machine(), cfg, plan);
  EXPECT_NEAR(r.integration, r.parent_step + r.nest_phase + r.sync_time,
              1e-12);
  EXPECT_GE(r.max_wait, r.avg_wait);
}

/// Tile-size invariance property tests and build-tier wiring checks.
///
/// The cache-tiled RK3 driver promises that the tile size is a pure
/// performance knob: tiling only reorders writes of independent output
/// values, so integrating with tile sizes {8, 16, 32, full-row} must
/// produce bit-identical state — in every tier, fast-math included
/// (the same machine code runs per row regardless of the runtime tile
/// bound). These tests hash the raw buffers to lock that in.
///
/// The SimdTier tests pin the NESTWX_SIMD × NESTWX_CHECK_BOUNDS
/// composition contract: checked builds must keep the restrict kernels
/// but drop the vector pragmas (see swm/simd.hpp), and the combination
/// must build and pass — which this binary existing and running proves.

#include <gtest/gtest.h>

#include <vector>

#include "core/plan_key.hpp"
#include "nest/simulation.hpp"
#include "swm/bc.hpp"
#include "swm/dynamics.hpp"
#include "swm/simd.hpp"

namespace s = nestwx::swm;
namespace n = nestwx::nest;

namespace {

/// Smooth polynomial state (portable: no libm transcendentals).
s::State poly_state(int nx, int ny) {
  s::GridSpec g;
  g.nx = nx;
  g.ny = ny;
  g.dx = g.dy = 1000.0;
  s::State st(g);
  auto fx = [](int i, int nd) {
    const double x = (static_cast<double>(i) + 0.5) / nd;
    return x * (1.0 - x);
  };
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) {
      st.h(i, j) = 500.0 + 290.0 * fx(i, nx) * fx(j, ny) +
                   0.3 * ((i * 3 + j * 13) % 6);
      st.b(i, j) = 9.0 * fx(i, nx) * (1.0 + 0.4 * fx(j, ny));
    }
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i <= nx; ++i) st.u(i, j) = 0.5 * fx(j, ny);
  for (int j = 0; j <= ny; ++j)
    for (int i = 0; i < nx; ++i) st.v(i, j) = -0.45 * fx(i, nx);
  return st;
}

std::uint64_t field_hash(const s::Field2D& f) {
  nestwx::core::Fingerprint fp;
  for (double v : f.raw()) fp.mix(v);
  return fp.value();
}

std::vector<std::uint64_t> state_hashes(const s::State& st) {
  return {field_hash(st.h), field_hash(st.u), field_hash(st.v)};
}

// Tile sizes the property quantifies over; 0 = one full-row sweep.
constexpr int kTiles[] = {8, 16, 32, 0};

}  // namespace

TEST(SwmTiling, StepperBitIdenticalAcrossTileSizes) {
  for (const bool nonlinear : {true, false}) {
    for (const double viscosity : {0.0, 60.0}) {
      s::ModelParams p;
      p.coriolis = 1e-4;
      p.drag = 1e-5;
      p.nonlinear = nonlinear;
      p.viscosity = viscosity;
      p.boundary = s::BoundaryKind::periodic;

      std::vector<std::uint64_t> expected;
      for (const int tile : kTiles) {
        s::State st = poly_state(50, 37);  // deliberately not tile-aligned
        s::apply_boundary(st, p.boundary);
        s::Stepper stepper(st.grid, p);
        stepper.set_tile_rows(tile);
        ASSERT_EQ(stepper.tile_rows(), tile);
        stepper.run(st, 2.0, 8);
        const auto hashes = state_hashes(st);
        if (expected.empty())
          expected = hashes;
        else
          EXPECT_EQ(hashes, expected)
              << "tile=" << tile << " nonlinear=" << nonlinear
              << " viscosity=" << viscosity
              << " drifted from the first tile size";
      }
    }
  }
}

TEST(SwmTiling, NestedSimulationBitIdenticalAcrossTileSizes) {
  std::vector<std::vector<std::uint64_t>> runs;
  for (const int tile : kTiles) {
    s::ModelParams p;
    p.coriolis = 1e-4;
    p.viscosity = 40.0;
    p.boundary = s::BoundaryKind::wall;
    n::NestedSimulation sim(poly_state(48, 40), p,
                            {n::NestSpec{"west", 6, 6, 10, 8, 2},
                             n::NestSpec{"east", 30, 24, 10, 10, 3}});
    sim.set_tile_rows(tile);
    EXPECT_EQ(sim.tile_rows(), tile);
    sim.run(2.0, 4);
    std::vector<std::uint64_t> hashes = state_hashes(sim.parent());
    for (std::size_t k = 0; k < sim.sibling_count(); ++k)
      for (std::uint64_t h : state_hashes(sim.sibling(k).state()))
        hashes.push_back(h);
    runs.push_back(std::move(hashes));
  }
  for (std::size_t i = 1; i < runs.size(); ++i)
    EXPECT_EQ(runs[i], runs[0]) << "tile=" << kTiles[i];
}

TEST(SwmTiling, SetTileRowsClampsNonPositiveValues) {
  // Documented contract: any int is accepted; rows <= 0 is clamped to 0,
  // selecting the untiled full-sweep path. Integration with a clamped
  // negative request must match the explicit full sweep bit for bit.
  s::ModelParams p;
  p.boundary = s::BoundaryKind::periodic;
  s::GridSpec g;
  g.nx = g.ny = 16;
  g.dx = g.dy = 1000.0;
  s::Stepper stepper(g, p);
  stepper.set_tile_rows(-7);
  EXPECT_EQ(stepper.tile_rows(), 0);
  stepper.set_tile_rows(0);
  EXPECT_EQ(stepper.tile_rows(), 0);
  stepper.set_tile_rows(5);
  EXPECT_EQ(stepper.tile_rows(), 5);

  auto run_with = [&](int rows) {
    s::State st = poly_state(30, 22);
    s::apply_boundary(st, p.boundary);
    s::Stepper stp(st.grid, p);
    stp.set_tile_rows(rows);
    stp.run(st, 2.0, 4);
    return state_hashes(st);
  };
  EXPECT_EQ(run_with(-3), run_with(0));
}

TEST(SwmTiling, TileSurvivesViscosityRebuild) {
  // set_viscosity rebuilds every stepper; the tile choice must ride along.
  s::ModelParams p;
  p.viscosity = 40.0;
  p.boundary = s::BoundaryKind::wall;
  n::NestedSimulation sim(poly_state(32, 32), p,
                          {n::NestSpec{"c", 8, 8, 8, 8, 2}});
  sim.set_tile_rows(8);
  sim.set_viscosity(80.0);
  EXPECT_EQ(sim.tile_rows(), 8);
}

TEST(SimdTier, CheckBoundsDowngradesVectorLoops) {
  constexpr s::BuildTier tier = s::build_tier();
  // The composition contract: vector pragmas are active exactly when the
  // SIMD kernels are compiled in AND bounds checking is off. A
  // bounds-checked SIMD build (the sanitizer presets) must still build and
  // run — this whole binary is that test — but with scalar inner loops.
  EXPECT_EQ(tier.vector_loops, tier.simd_compiled && !tier.check_bounds);
#ifdef NESTWX_CHECK_BOUNDS
  EXPECT_TRUE(tier.check_bounds);
  EXPECT_FALSE(tier.vector_loops);
#endif
#ifdef NESTWX_FASTMATH
  // Fast-math implies the SIMD kernels (enforced at configure time).
  EXPECT_TRUE(tier.simd_compiled);
  EXPECT_TRUE(tier.fastmath);
#endif
  // The tier name must reflect the same wiring.
  const std::string name = s::build_tier_name();
  if (tier.fastmath)
    EXPECT_EQ(name, "simd-fastmath");
  else if (tier.vector_loops)
    EXPECT_EQ(name, "simd-exact");
  else if (tier.simd_compiled)
    EXPECT_EQ(name, "simd-checked");
  else
    EXPECT_EQ(name, "scalar-exact");
}

TEST(SimdTier, PerLoopHooksMatchFusedKernels) {
  // tendency_mass/u/v are the same row kernels compute_tendency drives;
  // their outputs must agree bit for bit in every tier.
  s::ModelParams p;
  p.coriolis = 1e-4;
  p.drag = 1e-5;
  p.nonlinear = true;
  p.viscosity = 70.0;
  p.boundary = s::BoundaryKind::periodic;
  s::State st = poly_state(33, 29);
  s::apply_boundary(st, p.boundary);

  s::Tendency whole(st.grid);
  s::compute_tendency(st, p, whole);
  s::Tendency loops(st.grid);
  s::tendency_mass(st, p, loops.dh);
  s::tendency_u(st, p, loops.du);
  s::tendency_v(st, p, loops.dv);

  EXPECT_EQ(field_hash(whole.dh), field_hash(loops.dh));
  EXPECT_EQ(field_hash(whole.du), field_hash(loops.du));
  EXPECT_EQ(field_hash(whole.dv), field_hash(loops.dv));
}

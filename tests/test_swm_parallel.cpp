/// Row-band parallel stepping and ordered-reduction determinism tests.
///
/// The band-parallel driver promises that band decomposition — like
/// tiling — only reorders writes of independent output values, so the
/// integration is bit-identical at any thread count and any band count.
/// The reduction scans promise: min/max/finiteness reductions are
/// order-invariant (banded == serial, bit for bit), while diagnose()'s
/// sums are ordered per-band partials — byte-identical at any thread
/// count for a fixed band count, and equal to the serial scan when the
/// resolved band count is 1.
///
/// The mixed-parallelism stress (sibling-level tasks fanning out into
/// band-level parallel_for on the same pool) runs under the TSan CI
/// preset; it is the data-race canary for the help-running scheduler.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "core/plan_key.hpp"
#include "nest/simulation.hpp"
#include "swm/bc.hpp"
#include "swm/diagnostics.hpp"
#include "swm/dynamics.hpp"
#include "swm/stability.hpp"
#include "util/thread_pool.hpp"

namespace s = nestwx::swm;
namespace n = nestwx::nest;
namespace u = nestwx::util;

namespace {

/// Smooth polynomial state (portable: no libm transcendentals).
s::State poly_state(int nx, int ny) {
  s::GridSpec g;
  g.nx = nx;
  g.ny = ny;
  g.dx = g.dy = 1000.0;
  s::State st(g);
  auto fx = [](int i, int nd) {
    const double x = (static_cast<double>(i) + 0.5) / nd;
    return x * (1.0 - x);
  };
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i < nx; ++i) {
      st.h(i, j) = 500.0 + 290.0 * fx(i, nx) * fx(j, ny) +
                   0.3 * ((i * 3 + j * 13) % 6);
      st.b(i, j) = 9.0 * fx(i, nx) * (1.0 + 0.4 * fx(j, ny));
    }
  for (int j = 0; j < ny; ++j)
    for (int i = 0; i <= nx; ++i) st.u(i, j) = 0.5 * fx(j, ny);
  for (int j = 0; j <= ny; ++j)
    for (int i = 0; i < nx; ++i) st.v(i, j) = -0.45 * fx(i, nx);
  return st;
}

std::uint64_t field_hash(const s::Field2D& f) {
  nestwx::core::Fingerprint fp;
  for (double v : f.raw()) fp.mix(v);
  return fp.value();
}

std::vector<std::uint64_t> state_hashes(const s::State& st) {
  return {field_hash(st.h), field_hash(st.u), field_hash(st.v)};
}

s::ModelParams test_params(s::BoundaryKind bc) {
  s::ModelParams p;
  p.coriolis = 1e-4;
  p.drag = 1e-5;
  p.viscosity = 60.0;
  p.boundary = bc;
  return p;
}

}  // namespace

TEST(SwmParallel, StepperBitIdenticalAcrossThreadAndBandCounts) {
  const auto p = test_params(s::BoundaryKind::periodic);
  // Serial reference, then every (threads, bands) combination including
  // band counts that neither divide the tile blocks nor match the pool.
  auto run = [&](u::ThreadPool* pool, int bands) {
    s::State st = poly_state(50, 37);  // deliberately not tile-aligned
    s::apply_boundary(st, p.boundary);
    s::Stepper stepper(st.grid, p);
    stepper.set_thread_pool(pool, bands);
    stepper.run(st, 2.0, 8);
    return state_hashes(st);
  };
  const auto expected = run(nullptr, 0);
  for (const int threads : {1, 2, 8}) {
    u::ThreadPool pool(threads);
    for (const int bands : {0, 1, 2, 3, 5}) {
      EXPECT_EQ(run(&pool, bands), expected)
          << "threads=" << threads << " bands=" << bands
          << " drifted from the serial sweep";
    }
  }
}

TEST(SwmParallel, BandCountReportsResolvedBands) {
  const auto p = test_params(s::BoundaryKind::periodic);
  s::State st = poly_state(40, 64);
  s::Stepper stepper(st.grid, p);
  EXPECT_EQ(stepper.band_count(), 1);  // no pool: serial
  u::ThreadPool pool(4);
  stepper.set_thread_pool(&pool);
  // 64+1 rows in 16-row tiles = 5 blocks; 4 threads -> 4 bands.
  EXPECT_EQ(stepper.band_count(), 4);
  stepper.set_thread_pool(&pool, 2);
  EXPECT_EQ(stepper.band_count(), 2);
  stepper.set_thread_pool(&pool, 99);  // clamped to the tile-block count
  EXPECT_EQ(stepper.band_count(), 5);
  stepper.set_tile_rows(0);  // untiled: a single block, a single band
  EXPECT_EQ(stepper.band_count(), 1);
  stepper.set_thread_pool(nullptr);
  stepper.set_tile_rows(16);
  EXPECT_EQ(stepper.band_count(), 1);
}

TEST(SwmParallel, ComputeTendencyPoolOverloadMatchesSerial) {
  const auto p = test_params(s::BoundaryKind::periodic);
  s::State st = poly_state(33, 29);
  s::apply_boundary(st, p.boundary);
  s::Tendency serial(st.grid);
  s::compute_tendency(st, p, serial);
  u::ThreadPool pool(4);
  for (const int bands : {0, 2, 3}) {
    s::Tendency banded(st.grid);
    s::compute_tendency(st, p, banded, &pool, bands);
    EXPECT_EQ(field_hash(banded.dh), field_hash(serial.dh)) << bands;
    EXPECT_EQ(field_hash(banded.du), field_hash(serial.du)) << bands;
    EXPECT_EQ(field_hash(banded.dv), field_hash(serial.dv)) << bands;
  }
}

TEST(SwmParallel, OrderInvariantReductionsMatchSerialBitForBit) {
  // max/min/AND reductions are order-invariant: the banded scans must
  // reproduce the serial results exactly, at any thread and band count.
  const auto p = test_params(s::BoundaryKind::wall);
  s::State st = poly_state(47, 41);
  s::apply_boundary(st, p.boundary);
  const double serial_courant = s::gravity_wave_courant(st, p.gravity, 2.0);
  const auto serial_health = s::check_stability(st, p, 2.0);
  for (const int threads : {1, 2, 8}) {
    u::ThreadPool pool(threads);
    for (const int bands : {0, 1, 3, 7}) {
      EXPECT_EQ(s::gravity_wave_courant(st, p.gravity, 2.0, &pool, bands),
                serial_courant);
      EXPECT_TRUE(s::all_finite(st, &pool, bands));
      const auto h = s::check_stability(st, p, 2.0, {}, &pool, bands);
      EXPECT_EQ(h.courant, serial_health.courant);
      EXPECT_EQ(h.min_depth, serial_health.min_depth);
      EXPECT_EQ(h.max_speed, serial_health.max_speed);
      EXPECT_EQ(h.max_abs_eta, serial_health.max_abs_eta);
      EXPECT_EQ(h.reason, serial_health.reason);
    }
  }
}

TEST(SwmParallel, BandedAllFiniteDetectsNaN) {
  s::State st = poly_state(40, 32);
  st.u(17, 20) = std::numeric_limits<double>::quiet_NaN();
  u::ThreadPool pool(4);
  EXPECT_FALSE(s::all_finite(st));
  EXPECT_FALSE(s::all_finite(st, &pool));
  EXPECT_FALSE(s::all_finite(st, &pool, 3));
}

TEST(SwmParallel, BandedDiagnoseThreadInvariantAtFixedBandCount) {
  s::State st = poly_state(44, 36);
  s::apply_boundary(st, s::BoundaryKind::periodic);
  const auto serial = s::diagnose(st, 9.81);

  // Fixed band count, varying thread count: byte-identical sums (each
  // band's partial is a fixed row range; the combine is in band order).
  auto run = [&](int threads, int bands) {
    u::ThreadPool pool(threads);
    return s::diagnose(st, 9.81, &pool, bands);
  };
  const auto four_a = run(2, 4);
  const auto four_b = run(8, 4);
  EXPECT_EQ(four_a.mass, four_b.mass);
  EXPECT_EQ(four_a.kinetic_energy, four_b.kinetic_energy);
  EXPECT_EQ(four_a.potential_energy, four_b.potential_energy);
  EXPECT_EQ(four_a.total_energy, four_b.total_energy);

  // min/max fields are order-invariant: equal to serial at any banding.
  EXPECT_EQ(four_a.max_speed, serial.max_speed);
  EXPECT_EQ(four_a.min_depth, serial.min_depth);
  EXPECT_EQ(four_a.max_eta, serial.max_eta);
  EXPECT_EQ(four_a.min_eta, serial.min_eta);

  // A resolved band count of 1 (explicit, or a one-thread pool) is the
  // serial scan, sums included.
  const auto one_band = run(8, 1);
  EXPECT_EQ(one_band.mass, serial.mass);
  EXPECT_EQ(one_band.total_energy, serial.total_energy);
  const auto one_thread = run(1, 0);
  EXPECT_EQ(one_thread.mass, serial.mass);
  EXPECT_EQ(one_thread.total_energy, serial.total_energy);

  // Null pool is the serial scan by definition.
  const auto null_pool = s::diagnose(st, 9.81, nullptr, 4);
  EXPECT_EQ(null_pool.mass, serial.mass);
}

TEST(SwmParallel, MixedSiblingAndBandParallelismBitIdentical) {
  // The TSan stress: sibling-level tasks (ghost staging TaskGroup +
  // sibling parallel_for) fan out into band-level nested parallel_for on
  // the same pool — crossover 1 forces bands even on the small nests.
  // Results must match the fully serial run byte for byte.
  auto run = [&](u::ThreadPool* pool, int budget_threads) {
    s::ModelParams p;
    p.coriolis = 1e-4;
    p.viscosity = 40.0;
    p.boundary = s::BoundaryKind::wall;
    n::NestedSimulation sim(poly_state(64, 56), p,
                            {n::NestSpec{"sw", 4, 4, 12, 10, 2},
                             n::NestSpec{"ne", 40, 36, 10, 10, 3},
                             n::NestSpec{"se", 44, 6, 8, 8, 2}});
    if (pool != nullptr) {
      sim.set_thread_pool(pool);
      n::NestedSimulation::ThreadBudget budget;
      budget.threads = budget_threads;
      budget.band_crossover_rows = 1;  // force bands everywhere
      sim.set_thread_budget(budget);
      // An effective budget of one thread resolves to serial sweeps; any
      // wider budget must give the parent bands (crossover is 1).
      const int effective =
          budget_threads > 0 ? budget_threads : pool->thread_count();
      if (effective > 1) EXPECT_GT(sim.parent_band_count(), 1);
      for (std::size_t k = 0; k < sim.sibling_count(); ++k)
        EXPECT_GE(sim.sibling_band_count(k), 1);
    }
    sim.run(2.0, 6);
    std::vector<std::uint64_t> hashes = state_hashes(sim.parent());
    for (std::size_t k = 0; k < sim.sibling_count(); ++k)
      for (std::uint64_t h : state_hashes(sim.sibling(k).state()))
        hashes.push_back(h);
    return hashes;
  };
  const auto expected = run(nullptr, 0);
  for (const int threads : {1, 2, 8}) {
    u::ThreadPool pool(threads);
    EXPECT_EQ(run(&pool, 0), expected) << "threads=" << threads;
  }
  // An explicit sub-pool budget must not change bits either.
  u::ThreadPool pool(8);
  EXPECT_EQ(run(&pool, 3), expected);
}

TEST(SwmParallel, BudgetCrossoverKeepsSmallDomainsSerial) {
  s::ModelParams p;
  p.boundary = s::BoundaryKind::wall;
  n::NestedSimulation sim(poly_state(64, 56), p,
                          {n::NestSpec{"c", 8, 8, 10, 10, 2}});
  u::ThreadPool pool(4);
  sim.set_thread_pool(&pool);
  // Default crossover (48 rows): the 56-row parent gets bands, the
  // 20-row child stays serial.
  EXPECT_GT(sim.parent_band_count(), 1);
  EXPECT_EQ(sim.sibling_band_count(0), 1);
  // Raising the crossover past the parent size turns bands off entirely.
  n::NestedSimulation::ThreadBudget budget;
  budget.band_crossover_rows = 1000;
  sim.set_thread_budget(budget);
  EXPECT_EQ(sim.parent_band_count(), 1);
  // Budget survives the stepper rebuilds of set_viscosity.
  budget.band_crossover_rows = 1;
  sim.set_thread_budget(budget);
  EXPECT_GT(sim.parent_band_count(), 1);
  sim.set_viscosity(80.0);
  EXPECT_GT(sim.parent_band_count(), 1);
  EXPECT_EQ(sim.thread_budget().band_crossover_rows, 1);
}

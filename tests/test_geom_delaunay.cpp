#include "geom/delaunay.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace g = nestwx::geom;
using nestwx::util::PreconditionError;

TEST(Delaunay, SingleTriangle) {
  const std::vector<g::Vec2> pts{{0, 0}, {1, 0}, {0, 1}};
  const auto d = g::Delaunay::build(pts);
  ASSERT_EQ(d.triangles().size(), 1u);
  EXPECT_EQ(d.delaunay_violations(), 0);
}

TEST(Delaunay, SquareYieldsTwoTriangles) {
  const std::vector<g::Vec2> pts{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  const auto d = g::Delaunay::build(pts);
  EXPECT_EQ(d.triangles().size(), 2u);
  EXPECT_EQ(d.delaunay_violations(), 0);
}

TEST(Delaunay, RejectsDegenerateInputs) {
  EXPECT_THROW(g::Delaunay::build(std::vector<g::Vec2>{{0, 0}, {1, 1}}),
               PreconditionError);
  EXPECT_THROW(g::Delaunay::build(
                   std::vector<g::Vec2>{{0, 0}, {1, 1}, {2, 2}, {3, 3}}),
               PreconditionError);
  EXPECT_THROW(g::Delaunay::build(
                   std::vector<g::Vec2>{{0, 0}, {0, 0}, {1, 1}, {0, 1}}),
               PreconditionError);
}

TEST(Delaunay, EulerRelationForTriangulation) {
  // For a Delaunay triangulation of n points with h hull points:
  // triangles = 2n − h − 2.
  nestwx::util::Rng rng(7);
  std::vector<g::Vec2> pts;
  for (int i = 0; i < 40; ++i)
    pts.push_back({rng.uniform(0, 10), rng.uniform(0, 10)});
  const auto d = g::Delaunay::build(pts);
  const auto n = static_cast<int>(pts.size());
  const auto h = static_cast<int>(d.hull().size());
  EXPECT_EQ(static_cast<int>(d.triangles().size()), 2 * n - h - 2);
}

TEST(Delaunay, EmptyCircumcirclePropertyOnRandomSets) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    nestwx::util::Rng rng(seed);
    std::vector<g::Vec2> pts;
    for (int i = 0; i < 60; ++i)
      pts.push_back({rng.uniform(-3, 3), rng.uniform(-3, 3)});
    const auto d = g::Delaunay::build(pts);
    EXPECT_EQ(d.delaunay_violations(1e-9), 0) << "seed " << seed;
  }
}

TEST(Delaunay, AdjacencyIsSymmetric) {
  nestwx::util::Rng rng(11);
  std::vector<g::Vec2> pts;
  for (int i = 0; i < 30; ++i)
    pts.push_back({rng.uniform(0, 1), rng.uniform(0, 1)});
  const auto d = g::Delaunay::build(pts);
  for (int t = 0; t < static_cast<int>(d.triangles().size()); ++t) {
    for (int e = 0; e < 3; ++e) {
      const int n = d.triangles()[t].nbr[e];
      if (n < 0) continue;
      bool back = false;
      for (int f = 0; f < 3; ++f)
        if (d.triangles()[n].nbr[f] == t) back = true;
      EXPECT_TRUE(back) << "triangle " << t << " edge " << e;
    }
  }
}

TEST(Delaunay, LocateFindsContainingTriangle) {
  nestwx::util::Rng rng(13);
  std::vector<g::Vec2> pts;
  for (int i = 0; i < 50; ++i)
    pts.push_back({rng.uniform(0, 4), rng.uniform(0, 4)});
  const auto d = g::Delaunay::build(pts);
  for (int q = 0; q < 200; ++q) {
    const g::Vec2 p{rng.uniform(0.5, 3.5), rng.uniform(0.5, 3.5)};
    const int tri = d.locate(p);
    if (tri < 0) continue;  // outside hull is allowed
    const auto& t = d.triangles()[tri];
    for (int e = 0; e < 3; ++e) {
      EXPECT_GE(g::orient2d(d.points()[t.v[e]], d.points()[t.v[(e + 1) % 3]],
                            p),
                -1e-9);
    }
  }
}

TEST(Delaunay, LocateOutsideHullReturnsMinusOne) {
  const std::vector<g::Vec2> pts{{0, 0}, {1, 0}, {0, 1}};
  const auto d = g::Delaunay::build(pts);
  EXPECT_EQ(d.locate({5, 5}), -1);
  EXPECT_EQ(d.locate({-1, -1}), -1);
}

TEST(Barycentric, SumsToOneAndReproducesVertices) {
  const std::vector<g::Vec2> pts{{0, 0}, {2, 0}, {0, 2}};
  const auto d = g::Delaunay::build(pts);
  const auto b = d.barycentric(0, {0.5, 0.5});
  EXPECT_NEAR(b.lambda[0] + b.lambda[1] + b.lambda[2], 1.0, 1e-12);
  // At a vertex, the weight is 1 on that vertex.
  const auto bv = d.barycentric(0, d.points()[d.triangles()[0].v[1]]);
  EXPECT_NEAR(bv.lambda[1], 1.0, 1e-12);
}

TEST(Interpolate, ExactForLinearFunctions) {
  // Interpolation of a linear field is exact everywhere inside the hull.
  nestwx::util::Rng rng(17);
  std::vector<g::Vec2> pts;
  for (int i = 0; i < 25; ++i)
    pts.push_back({rng.uniform(0, 2), rng.uniform(0, 2)});
  const auto d = g::Delaunay::build(pts);
  auto f = [](g::Vec2 p) { return 3.0 * p.x - 2.0 * p.y + 0.5; };
  std::vector<double> values;
  for (const auto& p : d.points()) values.push_back(f(p));
  for (int q = 0; q < 100; ++q) {
    const g::Vec2 p{rng.uniform(0.2, 1.8), rng.uniform(0.2, 1.8)};
    const auto v = d.interpolate(p, values);
    if (!v) continue;
    EXPECT_NEAR(*v, f(p), 1e-9);
  }
}

TEST(Interpolate, NulloptOutsideHull) {
  const std::vector<g::Vec2> pts{{0, 0}, {1, 0}, {0, 1}};
  const auto d = g::Delaunay::build(pts);
  const std::vector<double> values{1.0, 2.0, 3.0};
  EXPECT_FALSE(d.interpolate({5, 5}, values).has_value());
}

TEST(Interpolate, RejectsWrongValueCount) {
  const std::vector<g::Vec2> pts{{0, 0}, {1, 0}, {0, 1}};
  const auto d = g::Delaunay::build(pts);
  const std::vector<double> values{1.0, 2.0};
  EXPECT_THROW((void)d.interpolate({0.2, 0.2}, values), PreconditionError);
}

TEST(Incircle, SignConvention) {
  // d inside the circumcircle of CCW (a,b,c) gives positive incircle.
  const g::Vec2 a{0, 0}, b{2, 0}, c{0, 2};
  EXPECT_GT(g::incircle(a, b, c, {0.5, 0.5}), 0.0);
  EXPECT_LT(g::incircle(a, b, c, {5, 5}), 0.0);
}

/// Property sweeps of Algorithm 1 over random weight sets and grid
/// shapes: exact tiling, bounded disproportion, square-likeness and
/// determinism must hold everywhere, not just on the paper's examples.

#include <gtest/gtest.h>

#include "core/allocation.hpp"
#include "util/rng.hpp"

namespace c = nestwx::core;
namespace p = nestwx::procgrid;

struct AllocCase {
  const char* name;
  int gw, gh;   // grid shape
  int k;        // sibling count
  std::uint64_t seed;
};

class AllocationProperty : public ::testing::TestWithParam<AllocCase> {
 protected:
  std::vector<double> weights() const {
    nestwx::util::Rng rng(GetParam().seed);
    std::vector<double> w(static_cast<std::size_t>(GetParam().k));
    for (auto& x : w) x = rng.uniform(0.05, 1.0);
    return w;
  }
  p::Rect grid() const {
    return p::Rect{0, 0, GetParam().gw, GetParam().gh};
  }
};

TEST_P(AllocationProperty, ExactTiling) {
  const auto part = c::huffman_partition(grid(), weights());
  EXPECT_TRUE(part.is_exact_tiling());
  for (const auto& r : part.rects) EXPECT_GE(r.area(), 1);
}

TEST_P(AllocationProperty, DisproportionIsBounded) {
  // With grid cells ≫ k, no sibling's processor share exceeds ~1.6× its
  // weight share (integer rounding plus split-tree quantisation).
  const auto w = weights();
  const auto part = c::huffman_partition(grid(), w);
  if (grid().area() >= 64 * GetParam().k)
    EXPECT_LT(part.max_overallocation(w), 1.6) << GetParam().name;
}

TEST_P(AllocationProperty, RectanglesNotPathologicallyElongated) {
  const auto part = c::huffman_partition(grid(), weights());
  const double grid_elong = grid().elongation();
  for (const auto& r : part.rects) {
    // A rectangle may inherit the grid's own elongation plus the
    // worst-case factor from weight skew, but must stay bounded.
    EXPECT_LT(r.elongation(), 8.0 * std::max(1.0, grid_elong))
        << GetParam().name << " " << r.to_string();
  }
}

TEST_P(AllocationProperty, Deterministic) {
  const auto w = weights();
  const auto a = c::huffman_partition(grid(), w);
  const auto b = c::huffman_partition(grid(), w);
  ASSERT_EQ(a.rects.size(), b.rects.size());
  for (std::size_t i = 0; i < a.rects.size(); ++i)
    EXPECT_EQ(a.rects[i], b.rects[i]);
}

TEST_P(AllocationProperty, StripsAlsoTileExactly) {
  const auto w = weights();
  if (grid().w < GetParam().k) GTEST_SKIP();
  const auto part = c::strip_partition(grid(), w);
  EXPECT_TRUE(part.is_exact_tiling());
}

TEST_P(AllocationProperty, ScalingWeightsIsInvariant) {
  // Multiplying every weight by a constant must not change the result.
  auto w = weights();
  const auto base = c::huffman_partition(grid(), w);
  for (auto& x : w) x *= 1234.5;
  const auto scaled = c::huffman_partition(grid(), w);
  for (std::size_t i = 0; i < base.rects.size(); ++i)
    EXPECT_EQ(base.rects[i], scaled.rects[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AllocationProperty,
    ::testing::Values(AllocCase{"square32_k2", 32, 32, 2, 1},
                      AllocCase{"square32_k4", 32, 32, 4, 2},
                      AllocCase{"square32_k7", 32, 32, 7, 3},
                      AllocCase{"wide_k3", 64, 16, 3, 4},
                      AllocCase{"tall_k3", 16, 64, 3, 5},
                      AllocCase{"small_k4", 8, 8, 4, 6},
                      AllocCase{"big_k10", 128, 64, 10, 7},
                      AllocCase{"odd_k5", 23, 41, 5, 8},
                      AllocCase{"huge_k16", 128, 128, 16, 9}),
    [](const auto& info) { return std::string(info.param.name); });

#include "topo/health.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/plan_key.hpp"
#include "topo/machine.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "workload/configs.hpp"
#include "workload/machines.hpp"

namespace t = nestwx::topo;
namespace c = nestwx::core;
using nestwx::util::PreconditionError;

TEST(HealthMask, DefaultIsAllHealthy) {
  t::HealthMask mask;
  EXPECT_TRUE(mask.all_healthy());
  EXPECT_EQ(mask.failed_count(), 0);
  EXPECT_TRUE(mask.healthy(0, 0));
  EXPECT_TRUE(mask.healthy(1234, 5678));
  EXPECT_EQ(mask.to_string(), "all-healthy");
}

TEST(HealthMask, FailNodeIsIdempotent) {
  t::HealthMask mask;
  mask.fail_node(3, 4);
  mask.fail_node(3, 4);
  EXPECT_EQ(mask.failed_count(), 1);
  EXPECT_FALSE(mask.healthy(3, 4));
  EXPECT_TRUE(mask.healthy(4, 3));
  EXPECT_FALSE(mask.all_healthy());
}

TEST(HealthMask, EqualityIsOrderIndependent) {
  t::HealthMask a;
  a.fail_node(1, 2);
  a.fail_node(5, 0);
  t::HealthMask b;
  b.fail_node(5, 0);
  b.fail_node(1, 2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.failed_packed(), b.failed_packed());

  b.fail_node(0, 0);
  EXPECT_NE(a, b);
}

TEST(HealthMask, FailedPackedIsSorted) {
  t::HealthMask mask;
  mask.fail_node(7, 1);
  mask.fail_node(0, 3);
  mask.fail_node(2, 1);
  const auto packed = mask.failed_packed();
  ASSERT_EQ(packed.size(), 3u);
  EXPECT_TRUE(std::is_sorted(packed.begin(), packed.end()));
}

TEST(HealthMask, FailedInCountsOnlyTheRectangle) {
  t::HealthMask mask;
  mask.fail_node(1, 1);
  mask.fail_node(5, 5);
  mask.fail_node(2, 3);
  EXPECT_EQ(mask.failed_in(0, 0, 4, 4), 2);  // (1,1) and (2,3)
  EXPECT_EQ(mask.failed_in(4, 4, 4, 4), 1);  // (5,5)
  EXPECT_EQ(mask.failed_in(0, 0, 1, 1), 0);
}

TEST(HealthMask, RestrictedToRebasesCoordinates) {
  t::HealthMask mask;
  mask.fail_node(3, 4);
  mask.fail_node(0, 0);
  const auto sub = mask.restricted_to(2, 3, 4, 4);
  EXPECT_EQ(sub.failed_count(), 1);
  EXPECT_FALSE(sub.healthy(1, 1));  // (3,4) rebased by (-2,-3)
  EXPECT_TRUE(sub.healthy(0, 0));   // (0,0) lies outside the window

  const auto empty = mask.restricted_to(10, 10, 2, 2);
  EXPECT_TRUE(empty.all_healthy());
}

TEST(HealthMask, RejectsOutOfRangeCoordinates) {
  t::HealthMask mask;
  EXPECT_THROW(mask.fail_node(-1, 0), PreconditionError);
  EXPECT_THROW(mask.fail_node(0, 1 << 16), PreconditionError);
}

TEST(HealthMask, FingerprintIsOrderIndependentAndDiscriminating) {
  t::HealthMask a;
  a.fail_node(1, 2);
  a.fail_node(5, 0);
  t::HealthMask b;
  b.fail_node(5, 0);
  b.fail_node(1, 2);
  EXPECT_EQ(c::fingerprint(a), c::fingerprint(b));
  EXPECT_NE(c::fingerprint(a), c::fingerprint(t::HealthMask{}));

  // Swapping x and y must not alias.
  t::HealthMask xy, yx;
  xy.fail_node(1, 2);
  yx.fail_node(2, 1);
  EXPECT_NE(c::fingerprint(xy), c::fingerprint(yx));
}

TEST(HealthMask, MachineFingerprintIncorporatesHealth) {
  auto machine = nestwx::workload::bluegene_l(256);
  const auto healthy_fp = c::fingerprint(machine);
  machine.health.fail_node(0, 0);
  const auto degraded_fp = c::fingerprint(machine);
  EXPECT_NE(healthy_fp, degraded_fp)
      << "a degraded machine must never alias a healthy one in the cache";

  // plan_fingerprint inherits the distinction.
  auto healthy = nestwx::workload::bluegene_l(256);
  nestwx::util::Rng rng(3);
  const auto config = nestwx::workload::random_configs(rng, 1)[0];
  EXPECT_NE(c::plan_fingerprint(machine, config, c::Strategy::concurrent,
                                c::Allocator::huffman,
                                c::MapScheme::multilevel),
            c::plan_fingerprint(healthy, config, c::Strategy::concurrent,
                                c::Allocator::huffman,
                                c::MapScheme::multilevel));
}

/// \file fault_recovery.cpp
/// Walkthrough: campaigns that survive node failures.
///
/// Multi-day ensemble campaigns on torus machines lose nodes; an
/// operational scheduler must roll the affected member back to its last
/// checkpoint, carve a healthy sub-machine out of the surviving face,
/// re-plan there and re-enqueue — without perturbing untouched members.
/// This example shows the fault/ subsystem doing exactly that:
///
///   1. a scripted node fault at t = 50% of a 4-member campaign — the
///      struck member recovers on a re-planned (smaller) sub-machine
///      while the other members run to completion untouched;
///   2. the price of elasticity — lost work, recovery latency and the
///      campaign's goodput versus its fault-free makespan;
///   3. determinism — the fault report is byte-identical at 1 and 8 host
///      threads, and replaying the same seeded FaultPlan reproduces it.
///
///   fault_recovery [--cores=1024] [--members=4] [--iterations=60]

#include <iostream>

#include "campaign/campaign.hpp"
#include "fault/fault_plan.hpp"
#include "fault/recovery.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/configs.hpp"
#include "workload/machines.hpp"

using namespace nestwx;

int main(int argc, char** argv) {
  try {
    const util::Cli cli(argc, argv);
    const int cores = static_cast<int>(cli.get_int("cores", 1024));
    const int n = static_cast<int>(cli.get_int("members", 4));
    const int iterations = static_cast<int>(cli.get_int("iterations", 60));

    const auto machine = workload::bluegene_p(cores);
    std::cout << "== Fault injection + elastic recovery on " << machine.name
              << " (" << machine.torus_x << "x" << machine.torus_y << "x"
              << machine.torus_z << " torus) ==\n\n";

    util::Rng rng(11);
    const auto configs = workload::random_configs(rng, n);
    std::vector<campaign::MemberSpec> members;
    for (int i = 0; i < n; ++i) {
      campaign::MemberSpec spec;
      spec.name = "member" + std::to_string(i);
      spec.config = configs[i];
      spec.iterations = iterations;
      members.push_back(std::move(spec));
    }

    std::cout << "fitting the paper's perf model once for the campaign...\n";
    auto scheduler =
        campaign::CampaignScheduler::with_profiled_model(machine);

    // --- 1. Fault-free baseline, then one scripted node fault at half the
    // baseline makespan, aimed at member0's corner of the face.
    campaign::CampaignOptions options;
    options.threads = 1;
    const auto baseline = scheduler.run(members, options);
    const auto& victim = baseline.members.front();
    const double t_fault = 0.5 * baseline.metrics.makespan;

    fault::FaultOptions faults;
    faults.plan = fault::FaultPlan::parse(
        std::to_string(t_fault) + ":node:" + std::to_string(victim.rect.x0) +
        ":" + std::to_string(victim.rect.y0));
    faults.checkpoint_every = 10;

    const auto report =
        fault::run_with_faults(scheduler, members, options, faults);
    NESTWX_ASSERT(!report.recoveries.empty(), "the scripted fault must hit");

    util::Table table({"member", "attempts", "final rect", "ranks",
                       "lost (s)", "recovery (s)", "done at (s)"});
    for (std::size_t i = 0; i < report.campaign.members.size(); ++i) {
      const auto& m = report.campaign.members[i];
      const auto& fs = report.member_stats[i];
      table.add_row({m.name, std::to_string(fs.attempts),
                     m.rect.to_string(), std::to_string(m.ranks),
                     util::Table::num(fs.lost_seconds, 1),
                     util::Table::num(fs.recovery_seconds, 1),
                     util::Table::num(m.completion_seconds, 1)});
    }
    table.print(std::cout, "Campaign under one node fault");

    const auto& rec = report.recoveries.front();
    std::cout << "\n" << rec.name << " lost node (" << rec.event.x << ","
              << rec.event.y << ") at t=" << util::Table::num(rec.event.time, 1)
              << " s: rolled back to iteration " << rec.resume_iteration
              << ", re-planned " << rec.old_rect.to_string() << " -> "
              << rec.new_rect.to_string() << " ("
              << rec.ranks_before << " -> " << rec.ranks_after
              << " ranks)\n";

    // --- 2. The price of elasticity.
    const auto& fm = report.metrics;
    std::cout << "\nmakespan " << util::Table::num(baseline.metrics.makespan, 1)
              << " s fault-free -> "
              << util::Table::num(report.campaign.metrics.makespan, 1)
              << " s under faults; lost "
              << util::Table::num(fm.lost_seconds, 1) << " s, recovery "
              << util::Table::num(fm.recovery_seconds, 1)
              << " s, goodput " << util::Table::num(100.0 * fm.goodput, 1)
              << "%\n\n";

    // --- 3. Determinism: thread count and fault-plan replay change
    // nothing. Fresh schedulers (cold caches) share the fitted model.
    const std::shared_ptr<const core::PerfModel> model_ref(
        &scheduler.model(), [](const core::PerfModel*) {});
    campaign::CampaignScheduler one(machine, model_ref);
    campaign::CampaignScheduler eight(machine, model_ref);
    campaign::CampaignOptions opts1 = options;
    campaign::CampaignOptions opts8 = options;
    opts1.threads = 1;
    opts8.threads = 8;
    fault::FaultOptions seeded;
    seeded.plan = fault::FaultPlan::random(
        /*seed=*/3, /*count=*/3, /*horizon=*/baseline.metrics.makespan,
        machine.torus_x, machine.torus_y);
    const std::string json1 = fault::report_to_json(
        fault::run_with_faults(one, members, opts1, seeded), machine, opts1,
        seeded);
    const std::string json8 = fault::report_to_json(
        fault::run_with_faults(eight, members, opts8, seeded), machine, opts8,
        seeded);
    NESTWX_ASSERT(json1 == json8,
                  "fault reports must not depend on thread count");
    campaign::CampaignScheduler replay(machine, model_ref);
    const std::string replayed = fault::report_to_json(
        fault::run_with_faults(replay, members, opts1, seeded), machine,
        opts1, seeded);
    NESTWX_ASSERT(replayed == json1, "fault-plan replay must reproduce");
    std::cout << "determinism: 1-thread, 8-thread and replayed fault "
                 "reports are byte-identical ("
              << json1.size() << " bytes of JSON)\n";
    return 0;
  } catch (const util::Error& e) {
    std::cerr << "fault_recovery: " << e.what() << "\n";
    return 1;
  }
}

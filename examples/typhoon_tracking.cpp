/// \file typhoon_tracking.cpp
/// The paper's motivating scenario (Fig. 1): two simultaneous depressions
/// over the Pacific, each tracked by its own high-resolution nest.
///
/// This example couples both halves of nestwx:
///  * the *numerics*: a real two-way-nested shallow-water simulation with
///    two geostrophic depressions, whose centers are tracked over time
///    and written to CSV (plus optional field frames);
///  * the *performance layer*: the same logical configuration is planned
///    and scheduled on a simulated Blue Gene/P so you can see what the
///    concurrent sibling strategy would buy on a real machine.
///
/// Usage: typhoon_tracking [--steps=60] [--cores=1024] [--frames]
///                         [--out=typhoon_out]

#include <iostream>

#include "core/planner.hpp"
#include "iosim/writer.hpp"
#include "nest/simulation.hpp"
#include "swm/diagnostics.hpp"
#include "swm/init.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/configs.hpp"
#include "workload/machines.hpp"
#include "wrfsim/driver.hpp"

int main(int argc, char** argv) {
  using namespace nestwx;
  const util::Cli cli(argc, argv);
  const int steps = static_cast<int>(cli.get_int("steps", 60));
  const int cores = static_cast<int>(cli.get_int("cores", 1024));
  const bool frames = cli.get_bool("frames", false);
  const std::string out_dir = cli.get("out", "typhoon_out");

  // ---- Numerics: parent at 24 km with two balanced depressions.
  swm::GridSpec g;
  g.nx = 96;
  g.ny = 96;
  g.dx = g.dy = 24e3;
  const double f = 7.0e-5;  // ~latitude 28N
  auto parent = swm::depression(g, f, 0.30, 0.40, 900.0, 25.0, 180e3);
  swm::add_depression(parent, f, 0.70, 0.62, 30.0, 150e3);

  swm::ModelParams params;
  params.coriolis = f;
  params.viscosity = 800.0;
  params.drag = 2e-6;
  params.boundary = swm::BoundaryKind::wall;

  // One 3x nest over each depression.
  nest::NestSpec west{"nest-west", 16, 24, 26, 26, 3};
  nest::NestSpec east{"nest-east", 54, 46, 26, 26, 3};
  nest::NestedSimulation sim(std::move(parent), params, {west, east});

  const double dt = sim.stable_dt(0.45);
  std::cout << "typhoon_tracking: 96x96 parent @24 km, two 78x78 nests @8 "
               "km, dt = "
            << util::Table::num(dt, 1) << " s\n\n";

  util::Table track({"step", "t (h)", "west min eta (m)", "west (i,j)",
                     "east min eta (m)", "east (i,j)", "parent max |v|"});
  for (int k = 0; k <= steps; ++k) {
    if (k > 0) sim.advance(dt);
    if (k % 10 == 0) {
      const auto w = swm::find_min_eta(sim.sibling(0).state());
      const auto e = swm::find_min_eta(sim.sibling(1).state());
      const auto d = swm::diagnose(sim.parent());
      track.add_row(
          {std::to_string(k), util::Table::num(k * dt / 3600.0, 2),
           util::Table::num(w.eta, 2),
           "(" + std::to_string(w.i) + "," + std::to_string(w.j) + ")",
           util::Table::num(e.eta, 2),
           "(" + std::to_string(e.i) + "," + std::to_string(e.j) + ")",
           util::Table::num(d.max_speed, 2)});
      if (frames) {
        iosim::write_state_frame(sim.parent(), out_dir, "parent", k);
        iosim::write_state_frame(sim.sibling(0).state(), out_dir, "west", k);
        iosim::write_state_frame(sim.sibling(1).state(), out_dir, "east", k);
      }
    }
  }
  track.print(std::cout, "Depression tracks (nested simulation)");
  track.write_csv(out_dir + "_track.csv");
  std::cout << "\nTrack written to " << out_dir << "_track.csv\n\n";

  // ---- Performance layer: the same logical layout on a Blue Gene/P.
  const auto machine = workload::bluegene_p(cores);
  const auto cfg = workload::make_config("typhoon", workload::pacific_parent(),
                                         {{234, 234}, {234, 234}});
  const auto model = core::DelaunayPerfModel::fit(
      wrfsim::profile_basis(machine, core::default_basis_domains()));
  const auto cmp = wrfsim::compare_strategies(machine, cfg, model);
  std::cout << "On " << machine.name << " with " << cores
            << " cores, concurrent sibling execution would cut the "
               "per-iteration time from "
            << util::Table::num(cmp.sequential.integration, 3) << " s to "
            << util::Table::num(cmp.concurrent_aware.integration, 3)
            << " s ("
            << util::Table::num(
                   util::improvement_pct(cmp.sequential.integration,
                                         cmp.concurrent_aware.integration),
                   1)
            << "% faster).\n";
  return 0;
}

/// \file ensemble_campaign.cpp
/// Walkthrough: scheduling an ensemble campaign with two-level divide and
/// conquer.
///
/// A forecast centre rarely runs one nested simulation at a time: it runs
/// *ensembles* — many perturbed members of the same configurations, plus
/// ad-hoc requests for new regions of interest. This example builds a
/// small ensemble, then shows the three pillars of the campaign
/// scheduler:
///
///   1. space sharing — the machine's torus is carved among the members
///      with the paper's Huffman allocator (areas ∝ predicted run time),
///      cutting campaign makespan versus running members in turn;
///   2. the plan cache — repeated configurations skip re-planning;
///   3. determinism — the report is byte-identical at 1 and 4 host
///      threads, so parallel planning never changes the science.
///
///   ensemble_campaign [--cores=512] [--members=6] [--iterations=50]

#include <iostream>

#include "campaign/campaign.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/configs.hpp"
#include "workload/machines.hpp"

using namespace nestwx;

int main(int argc, char** argv) {
  try {
    const util::Cli cli(argc, argv);
    // Default to a partition past single-run saturation (Fig. 2): that is
    // where space sharing reclaims the cores a lone run would waste.
    const int cores = static_cast<int>(cli.get_int("cores", 1024));
    const int n = static_cast<int>(cli.get_int("members", 6));
    const int iterations = static_cast<int>(cli.get_int("iterations", 50));

    const auto machine = workload::bluegene_p(cores);
    std::cout << "== Ensemble campaign on " << machine.name << " ("
              << machine.torus_x << "x" << machine.torus_y << "x"
              << machine.torus_z << " torus, " << machine.total_ranks()
              << " ranks) ==\n\n";

    // An ensemble with deliberate repetition: half the members reuse a
    // configuration, as perturbed-physics ensembles do.
    util::Rng rng(7);
    const auto configs = workload::random_configs(rng, (n + 1) / 2);
    std::vector<campaign::MemberSpec> members;
    for (int i = 0; i < n; ++i) {
      campaign::MemberSpec spec;
      spec.name = "member" + std::to_string(i);
      spec.config = configs[i % configs.size()];
      spec.iterations = iterations;
      members.push_back(std::move(spec));
    }

    std::cout << "fitting the paper's perf model once for the campaign...\n";
    auto scheduler =
        campaign::CampaignScheduler::with_profiled_model(machine);

    // --- 1. Space sharing vs the run-in-turn baseline.
    campaign::CampaignOptions space;
    space.threads = 1;
    const auto shared = scheduler.run(members, space);

    campaign::CampaignOptions turn;
    turn.threads = 1;
    turn.sharing = campaign::Sharing::time;
    scheduler.cache().clear();  // keep the comparison's cache stats clean
    const auto sequential = scheduler.run(members, turn);

    util::Table table({"mode", "waves", "makespan (s)", "members/h",
                       "latency p50 (s)", "latency p99 (s)"});
    auto row = [&](const std::string& name,
                   const campaign::CampaignReport& r) {
      table.add_row({name, std::to_string(r.metrics.waves),
                     util::Table::num(r.metrics.makespan, 1),
                     util::Table::num(r.metrics.throughput * 3600.0, 2),
                     util::Table::num(r.metrics.latency_p50, 1),
                     util::Table::num(r.metrics.latency_p99, 1)});
    };
    row("space-shared (divide & conquer)", shared);
    row("time-shared (one after another)", sequential);
    table.print(std::cout, "Campaign scheduling");
    std::cout << "space sharing improves campaign makespan by "
              << util::Table::num(
                     util::improvement_pct(sequential.metrics.makespan,
                                           shared.metrics.makespan),
                     1)
              << "%\n\n";

    // --- 2. The plan cache across repeated campaigns. A plan is keyed by
    // (sub-machine, config, strategy, allocator, scheme): duplicates hit
    // within a campaign when the sharer gives them equal-shaped slices,
    // and a resubmitted campaign — the cyclic forecasting case — plans
    // nothing at all.
    scheduler.cache().clear();
    const auto cold = scheduler.run(members, space);
    const auto warm = scheduler.run(members, space);
    std::cout << "plan cache: cold campaign " << cold.metrics.cache_hits
              << " hits / " << cold.metrics.cache_misses
              << " misses, resubmitted campaign " << warm.metrics.cache_hits
              << " hits / " << warm.metrics.cache_misses << " misses\n\n";

    // --- 3. Determinism across host thread counts. Fresh schedulers
    // (cold caches) sharing the already-fitted model.
    const std::shared_ptr<const core::PerfModel> model_ref(
        &scheduler.model(), [](const core::PerfModel*) {});
    campaign::CampaignScheduler one(machine, model_ref);
    campaign::CampaignScheduler four(machine, model_ref);
    campaign::CampaignOptions opts1 = space;
    campaign::CampaignOptions opts4 = space;
    opts1.threads = 1;
    opts4.threads = 4;
    const auto report1 = one.run(members, opts1);
    const auto report4 = four.run(members, opts4);
    const std::string json1 =
        campaign::report_to_json(report1, machine, opts1);
    const std::string json4 =
        campaign::report_to_json(report4, machine, opts4);
    NESTWX_ASSERT(json1 == json4,
                  "campaign reports must not depend on thread count");
    std::cout << "determinism: 1-thread and 4-thread reports are "
                 "byte-identical ("
              << json1.size() << " bytes of JSON)\n";
    return 0;
  } catch (const util::Error& e) {
    std::cerr << "ensemble_campaign: " << e.what() << "\n";
    return 1;
  }
}

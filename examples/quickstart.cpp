/// \file quickstart.cpp
/// Minimal end-to-end tour of the nestwx public API:
///   1. describe a machine (a Blue Gene/P partition) and a nested
///      configuration with multiple regions of interest;
///   2. profile the 13 basis domains and fit the Delaunay performance
///      prediction model (paper §3.1);
///   3. plan the concurrent execution: Huffman processor allocation
///      (§3.2) plus a topology-aware 2-D → 3-D mapping (§3.3);
///   4. simulate the default sequential strategy and the paper's
///      concurrent strategy, and report the improvement.
///
/// Usage: quickstart [--cores=2048] [--machine=bgp|bgl]

#include <iostream>

#include "core/planner.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/configs.hpp"
#include "workload/machines.hpp"
#include "wrfsim/driver.hpp"

int main(int argc, char** argv) {
  using namespace nestwx;
  const util::Cli cli(argc, argv);
  const int cores = static_cast<int>(cli.get_int("cores", 2048));
  const auto machine = cli.get("machine", "bgp") == "bgl"
                           ? workload::bluegene_l(cores)
                           : workload::bluegene_p(cores);

  std::cout << "nestwx quickstart — " << machine.name << ", " << cores
            << " cores (" << machine.torus_x << "x" << machine.torus_y
            << "x" << machine.torus_z << " torus)\n\n";

  // A parent domain over the western Pacific with four sibling nests
  // tracking simultaneous depressions (paper Fig. 1 scenario).
  const auto config = workload::table2_config();

  // Profile + fit the performance prediction model.
  const auto basis =
      wrfsim::profile_basis(machine, core::default_basis_domains());
  const auto model = core::DelaunayPerfModel::fit(basis);

  // Show predictions and the processor allocation they imply.
  const auto plan = core::plan_execution(
      machine, config, model, core::Strategy::concurrent,
      core::Allocator::huffman, core::MapScheme::multilevel);
  util::Table alloc({"sibling", "size", "predicted share", "processors"});
  for (std::size_t s = 0; s < config.siblings.size(); ++s) {
    const auto& sib = config.siblings[s];
    const auto& rect = plan.partition->rects[s];
    alloc.add_row({sib.name,
                   std::to_string(sib.nx) + "x" + std::to_string(sib.ny),
                   util::Table::num(100.0 * plan.weights[s], 1) + "%",
                   std::to_string(rect.w) + "x" + std::to_string(rect.h) +
                       " = " + std::to_string(rect.area())});
  }
  alloc.print(std::cout, "Huffman processor allocation (Algorithm 1)");
  std::cout << '\n';

  // Simulate the three canonical variants.
  wrfsim::RunOptions opt;
  opt.with_io = true;
  const auto cmp =
      wrfsim::compare_strategies(machine, config, model,
                                 core::MapScheme::multilevel, opt);
  util::Table results({"strategy", "integration (s/iter)", "I/O (s/iter)",
                       "total (s/iter)", "avg MPI_Wait (s/iter)",
                       "avg hops"});
  auto row = [&](const char* name, const wrfsim::RunResult& r) {
    results.add_row({name, util::Table::num(r.integration, 3),
                     util::Table::num(r.io_time, 3),
                     util::Table::num(r.total, 3),
                     util::Table::num(r.avg_wait, 3),
                     util::Table::num(r.avg_hops, 2)});
  };
  row("default sequential", cmp.sequential);
  row("concurrent + oblivious map", cmp.concurrent_oblivious);
  row("concurrent + multilevel map", cmp.concurrent_aware);
  results.print(std::cout, "Strategy comparison");

  std::cout << "\nImprovement over the default strategy: "
            << util::Table::num(
                   util::improvement_pct(cmp.sequential.total,
                                         cmp.concurrent_oblivious.total),
                   1)
            << "% (topology-oblivious), "
            << util::Table::num(
                   util::improvement_pct(cmp.sequential.total,
                                         cmp.concurrent_aware.total),
                   1)
            << "% (topology-aware)\n";
  return 0;
}

/// \file restart_workflow.cpp
/// Operational workflow demo: run a nested forecast segment, write
/// checkpoints and field frames, then restart from the checkpoint and
/// verify bit-identical continuation — the pattern an operational center
/// uses to split long forecasts across batch allocations.
///
/// Checkpoints use the hardened v2 format: atomic write (temp + rename)
/// and an FNV-1a checksum over header and payload, so a torn copy or a
/// flipped bit is refused with a typed error instead of silently seeding
/// the restart with garbage — demonstrated at the end.
///
/// Usage: restart_workflow [--segment-steps=40] [--out=restart_out]

#include <cstdio>
#include <fstream>
#include <iostream>

#include "iosim/checkpoint.hpp"
#include "iosim/writer.hpp"
#include "nest/simulation.hpp"
#include "swm/diagnostics.hpp"
#include "swm/init.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nestwx;
  const util::Cli cli(argc, argv);
  const int segment = static_cast<int>(cli.get_int("segment-steps", 40));
  const std::string out = cli.get("out", "restart_out");

  // A depression tracked by one nest.
  swm::GridSpec g;
  g.nx = g.ny = 64;
  g.dx = g.dy = 10e3;
  const double f = 1e-4;
  auto parent = swm::depression(g, f, 0.5, 0.5, 500.0, 15.0, 80e3);
  swm::ModelParams params;
  params.coriolis = f;
  params.viscosity = 400.0;
  params.boundary = swm::BoundaryKind::wall;
  const nest::NestSpec spec{"storm", 20, 20, 24, 24, 3};

  nest::NestedSimulation sim(parent, params, {spec});
  const double dt = sim.stable_dt(0.4);
  std::cout << "restart_workflow: dt = " << util::Table::num(dt, 1)
            << " s, two segments of " << segment << " steps\n\n";

  // --- Segment 1: run, checkpoint, keep going to produce the reference.
  sim.run(dt, segment);
  const std::string parent_ckpt = out + "_parent.ckpt";
  const std::string nest_ckpt = out + "_nest.ckpt";
  iosim::save_checkpoint(sim.parent(), parent_ckpt);
  iosim::save_checkpoint(sim.sibling(0).state(), nest_ckpt);
  iosim::write_state_frame(sim.parent(), out, "segment1", segment);
  std::cout << "segment 1 done; checkpoints written (" << parent_ckpt
            << ", " << nest_ckpt << ")\n";
  sim.run(dt, segment);  // reference continuation

  // --- Segment 2 on a "new allocation": restore and continue.
  auto restored_parent = iosim::load_checkpoint(parent_ckpt);
  nest::NestedSimulation resumed(std::move(restored_parent), params, {spec});
  // Restore the nest's own state (otherwise it is re-initialised by
  // interpolation, which is close but not bit-identical).
  resumed.sibling(0).state() = iosim::load_checkpoint(nest_ckpt);
  resumed.run(dt, segment);

  double max_diff = 0.0;
  for (int j = 0; j < g.ny; ++j)
    for (int i = 0; i < g.nx; ++i)
      max_diff = std::max(max_diff, std::abs(resumed.parent().h(i, j) -
                                             sim.parent().h(i, j)));
  util::Table report({"quantity", "value"});
  report.add_row({"parent min eta after restart",
                  util::Table::num(swm::find_min_eta(resumed.parent()).eta,
                                   3)});
  report.add_row({"max |restarted - uninterrupted| (m)",
                  util::Table::num(max_diff, 12)});
  report.add_row({"bit-identical restart", max_diff == 0.0 ? "yes" : "NO"});
  report.print(std::cout, "Restart verification");

  // --- Hardening demo: flip one payload byte of the parent checkpoint
  // and show that the v2 loader refuses it (checksum mismatch) instead of
  // restarting from corrupt data.
  bool rejected = false;
  {
    std::ifstream in(parent_ckpt, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)), {});
    bytes[bytes.size() / 2] ^= 0x01;
    const std::string damaged = out + "_damaged.ckpt";
    std::ofstream dmg(damaged, std::ios::binary);
    dmg.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    dmg.close();
    try {
      iosim::load_checkpoint(damaged);
    } catch (const iosim::CheckpointCorruptError& e) {
      rejected = true;
      std::cout << "\ncorrupted checkpoint correctly refused: " << e.what()
                << "\n";
    }
    std::remove(damaged.c_str());
  }
  if (!rejected) std::cout << "\nERROR: corrupted checkpoint loaded!\n";

  std::remove(parent_ckpt.c_str());
  std::remove(nest_ckpt.c_str());
  return max_diff == 0.0 && rejected ? 0 : 1;
}

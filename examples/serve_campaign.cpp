/// \file serve_campaign.cpp
/// Walkthrough: campaign-as-a-service with the file-backed request queue.
///
/// A forecast centre's campaigns arrive continuously, not as one batch:
/// cycles resubmit the same configurations, ad-hoc requests jump the
/// queue, and members join ensembles that are already running. This
/// example drives the src/serve service end to end:
///
///   1. ingress — requests are flat-JSON spool files, submitted by atomic
///      rename and claimed the same way, so a daemon crash never loses or
///      duplicates work (recover() re-queues claimed-but-unfinished
///      files);
///   2. policy — a bounded admission queue with priority aging, and
///      cross-request dedup: two requests for provably identical work
///      share one execution;
///   3. the sharded plan cache — plans persist across requests, spill to
///      disk under memory pressure, and reload on the next miss;
///   4. determinism — the drain replays arrivals in virtual time, so the
///      merged report is byte-identical at any worker-thread count.
///
///   serve_campaign [--cores=512] [--requests=16] [--gap=40] [--threads=4]

#include <filesystem>
#include <iostream>

#include "serve/request.hpp"
#include "serve/server.hpp"
#include "serve/spool.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "workload/machines.hpp"

using namespace nestwx;

int main(int argc, char** argv) {
  try {
    const util::Cli cli(argc, argv);
    const int cores = static_cast<int>(cli.get_int("cores", 512));
    const int n_requests = static_cast<int>(cli.get_int("requests", 16));
    const double gap = cli.get_double("gap", 40.0);
    const int threads = static_cast<int>(cli.get_int("threads", 4));

    const auto machine = workload::bluegene_l(cores);
    std::cout << "== Campaign service on " << machine.name << " ("
              << machine.total_ranks() << " ranks) ==\n\n";

    // 1. Fill a spool the way clients would: one .req file per request,
    // written atomically. The generator's arrival process is seeded, so
    // this example is reproducible end to end.
    const std::string spool_dir = "serve_example_spool";
    std::filesystem::remove_all(spool_dir);
    serve::Spool spool(spool_dir);
    const auto requests = serve::generate_requests(/*seed=*/7, n_requests,
                                                   gap);
    for (const auto& r : requests)
      serve::Spool::submit(spool_dir, r.id, serve::to_json(r) + "\n");
    std::cout << "spooled " << requests.size() << " request(s) in "
              << spool_dir << "/\n";

    // A restarting daemon always recovers first; on a clean spool this is
    // a no-op.
    spool.recover();

    // 2 + 3. One server drains the spool: bounded queue, aging, dedup,
    // and a sharded plan cache that spills to disk at 2 plans per shard.
    serve::ServeOptions options;
    options.threads = threads;
    options.queue_depth = 8;
    options.aging_rate = 0.01;
    options.cache.shards = 2;
    options.cache.shard_capacity = 2;
    options.cache.spill_dir = spool_dir + "/spill";
    std::cout << "fitting perf model...\n\n";
    auto server = serve::CampaignServer::with_profiled_model(machine,
                                                             options);

    const auto claimed = spool.claim_pending();
    std::vector<serve::Request> parsed;
    for (const auto& file : claimed)
      parsed.push_back(serve::parse_request(file.text, file.name));
    const serve::ServeReport report = server.execute(parsed);
    for (std::size_t i = 0; i < claimed.size(); ++i)
      spool.complete(claimed[i],
                     serve::outcome_to_json(report.outcomes[i]) + "\n");

    util::Table table({"request", "prio", "status", "detail", "wait (s)"});
    for (const auto& o : report.outcomes)
      table.add_row({o.request.id, std::to_string(o.request.priority),
                     serve::to_string(o.status), o.detail,
                     o.queue_wait < 0.0 ? std::string("-")
                                        : util::Table::num(o.queue_wait, 1)});
    table.print(std::cout, "Drain outcomes (claim order)");

    const serve::ServeMetrics& m = report.metrics;
    const serve::ShardedCacheStats& c = report.cache;
    std::cout << "\n" << m.completed << " completed, " << m.coalesced
              << " coalesced (dedup), " << m.rejected << " rejected, "
              << m.evicted << " evicted; utilization "
              << util::Table::num(100.0 * m.utilization, 1) << "%\n";
    std::cout << "plan cache: " << c.total.hits << " hit / "
              << c.total.misses << " miss, " << c.spills << " spilled, "
              << c.reloads << " reloaded from disk\n";
    std::cout << "responses in " << spool_dir << "/done/\n";

    // 4. The determinism pillar: the same drain at 1 thread produces the
    // same bytes. (The golden tests pin this at 1, 2 and 8 threads.)
    serve::ServeOptions serial = options;
    serial.threads = 1;
    serial.cache.spill_dir = spool_dir + "/spill-serial";
    auto server1 = serve::CampaignServer::with_profiled_model(machine,
                                                              serial);
    const auto report1 = server1.execute(parsed);
    const bool identical =
        serve::report_to_json(report, server.machine(), server.options()) ==
        serve::report_to_json(report1, server1.machine(),
                              server1.options());
    std::cout << "\nreport at " << threads
              << " threads vs 1 thread: "
              << (identical ? "byte-identical" : "DIFFERENT (bug!)") << "\n";
    return identical ? 0 : 1;
  } catch (const util::Error& e) {
    std::cerr << "serve_campaign: " << e.what() << "\n";
    return 1;
  }
}

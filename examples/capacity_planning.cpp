/// \file capacity_planning.cpp
/// Operational question the paper's §4.3.3 raises: how many cores should
/// a forecast with several large nests request, and when does the
/// concurrent sibling strategy start paying off?
///
/// Sweeps Blue Gene/P partition sizes for a chosen nest family, prints
/// time-per-iteration and efficiency for both strategies, and marks the
/// sweet spot (the smallest partition within 10 % of the best total
/// time).
///
/// Usage: capacity_planning [--family=small|medium|large]
///                          [--min-cores=512] [--max-cores=8192]

#include <iostream>
#include <vector>

#include "core/planner.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/configs.hpp"
#include "workload/machines.hpp"
#include "wrfsim/driver.hpp"

int main(int argc, char** argv) {
  using namespace nestwx;
  const util::Cli cli(argc, argv);
  const std::string family = cli.get("family", "large");
  const int min_cores = static_cast<int>(cli.get_int("min-cores", 512));
  const int max_cores = static_cast<int>(cli.get_int("max-cores", 8192));

  const auto config = family == "small"   ? workload::table3_config_small()
                      : family == "medium" ? workload::table3_config_medium()
                                           : workload::table3_config_large();
  std::cout << "capacity_planning: family '" << family << "' — "
            << config.siblings.size() << " nests, largest "
            << config.siblings[0].nx << "x" << config.siblings[0].ny
            << "\n\n";

  util::Table table({"cores", "sequential (s/iter)", "concurrent (s/iter)",
                     "improvement", "seq speedup", "conc speedup"});
  double seq_base = 0.0, conc_base = 0.0;
  int base_cores = 0;
  std::vector<std::pair<int, double>> totals;
  for (int cores = min_cores; cores <= max_cores; cores *= 2) {
    const auto machine = workload::bluegene_p(cores);
    const auto model = core::DelaunayPerfModel::fit(
        wrfsim::profile_basis(machine, core::default_basis_domains()));
    const auto cmp = wrfsim::compare_strategies(machine, config, model);
    if (base_cores == 0) {
      base_cores = cores;
      seq_base = cmp.sequential.integration;
      conc_base = cmp.concurrent_aware.integration;
    }
    totals.emplace_back(cores, cmp.concurrent_aware.integration);
    table.add_row(
        {std::to_string(cores),
         util::Table::num(cmp.sequential.integration, 3),
         util::Table::num(cmp.concurrent_aware.integration, 3),
         util::Table::num(
             util::improvement_pct(cmp.sequential.integration,
                                   cmp.concurrent_aware.integration),
             1) + "%",
         util::Table::num(seq_base / cmp.sequential.integration, 2) + "x",
         util::Table::num(conc_base / cmp.concurrent_aware.integration, 2) +
             "x"});
  }
  table.print(std::cout, "Partition-size sweep (" + family + " nests)");

  double best = totals.back().second;
  for (const auto& [cores, t] : totals) best = std::min(best, t);
  for (const auto& [cores, t] : totals) {
    if (t <= 1.10 * best) {
      std::cout << "\nSweet spot: " << cores
                << " cores — within 10% of the best concurrent time ("
                << util::Table::num(best, 3) << " s/iter); larger "
                << "partitions mostly buy idle processors.\n";
      break;
    }
  }
  return 0;
}

/// \file guarded_run.cpp
/// Numerical resilience demo: a three-nest forecast in which one nest is
/// seeded with a violently unstable free-surface spike. A plain advance()
/// loop NaN-poisons the whole simulation within a few steps (the garbage
/// reaches the parent through two-way feedback); the GuardedRunner
/// detects the blow-up with the stability monitor, rolls back to an
/// in-memory snapshot, retries at halved dt, and — when the same nest
/// keeps striking out — quarantines it on parent-interpolated state so
/// the parent and the healthy nests finish exactly as if the bad nest
/// never existed.
///
/// Usage: guarded_run [--steps=12] [--incident-log=PATH]

#include <iostream>

#include "nest/simulation.hpp"
#include "resilience/guarded_run.hpp"
#include "swm/diagnostics.hpp"
#include "swm/init.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nestwx;
  const util::Cli cli(argc, argv);
  const int steps = static_cast<int>(cli.get_int("steps", 12));
  const double dt = 40.0;

  auto make_sim = [] {
    swm::GridSpec g;
    g.nx = g.ny = 48;
    g.dx = g.dy = 8e3;
    auto parent = swm::lake_at_rest(g, 500.0);
    util::Rng rng(11);
    swm::perturb(parent, rng, 0.1);
    swm::apply_boundary(parent, swm::BoundaryKind::wall);
    swm::ModelParams p;
    p.boundary = swm::BoundaryKind::wall;
    return nest::NestedSimulation(
        std::move(parent), p,
        {nest::NestSpec{"west", 4, 4, 10, 10, 2},
         nest::NestSpec{"east", 30, 4, 10, 10, 2},
         nest::NestSpec{"north", 18, 30, 10, 10, 2}});
  };
  auto poison = [](nest::NestedSimulation& sim) {
    auto& child = sim.sibling(2).state();
    for (int j = 8; j < 12; ++j)
      for (int i = 8; i < 12; ++i) child.h(i, j) += 2e4;
  };

  // --- Without the guard: the spike destroys everything.
  {
    auto sim = make_sim();
    poison(sim);
    int died_at = -1;
    for (int s = 0; s < steps && died_at < 0; ++s) {
      sim.advance(dt);
      if (!swm::all_finite(sim.parent())) died_at = s + 1;
    }
    std::cout << "unguarded run: parent NaN-poisoned after "
              << (died_at < 0 ? std::string("> ") + std::to_string(steps)
                              : std::to_string(died_at))
              << " step(s)\n\n";
  }

  // --- With the guard: contained.
  auto sim = make_sim();
  poison(sim);
  resilience::GuardPolicy policy;
  policy.incident_log = cli.get("incident-log", "");
  resilience::GuardedRunner guard(sim, policy);
  const auto report = guard.run(dt, steps);

  util::Table incidents({"kind", "step", "sibling", "dt", "reason"});
  for (const auto& e : report.incidents)
    incidents.add_row({resilience::to_string(e.kind),
                       std::to_string(e.step), std::to_string(e.sibling),
                       util::Table::num(e.dt, 1), e.reason});
  incidents.print(std::cout, "Incident log");

  std::cout << "\nguarded run: " << report.steps << " steps completed, "
            << report.rollbacks << " rollback(s), " << report.dt_halvings
            << " dt halving(s), " << report.quarantined.size()
            << " nest(s) quarantined, final dt "
            << util::Table::num(report.final_dt, 1) << " s\n";
  const bool healthy = swm::all_finite(sim.parent()) &&
                       swm::all_finite(sim.sibling(0).state()) &&
                       swm::all_finite(sim.sibling(1).state());
  std::cout << "parent and healthy nests finite: " << (healthy ? "yes" : "NO")
            << "\n";
  if (!policy.incident_log.empty())
    std::cout << "incident log written to " << policy.incident_log << "\n";
  return healthy && report.steps == steps ? 0 : 1;
}

/// \file mapping_explorer.cpp
/// Visual tour of the 2-D → 3-D mapping heuristics (paper §3.3) on the
/// small Fig. 5/6 machine: prints each z-plane of the torus with the
/// virtual rank placed on every node, then compares hop statistics of all
/// four schemes for the sibling and parent halo patterns, and writes Blue
/// Gene-style mapfiles.
///
/// Usage: mapping_explorer [--cores=32] [--mapfiles]

#include <iomanip>
#include <iostream>
#include <map>

#include "core/mapping.hpp"
#include "procgrid/grid2d.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nestwx;
  const util::Cli cli(argc, argv);
  const bool mapfiles = cli.get_bool("mapfiles", false);

  // The paper's illustration machine: 4x4x2 torus, one rank per node,
  // 8x4 virtual grid with two equal sibling partitions.
  topo::MachineParams machine;
  machine.name = "fig5-demo";
  machine.torus_x = 4;
  machine.torus_y = 4;
  machine.torus_z = 2;
  machine.cores_per_node = 1;
  machine.mode = topo::NodeMode::smp;

  const procgrid::Grid2D grid(8, 4);
  core::GridPartition part;
  part.grid = grid.bounds();
  part.rects = {procgrid::Rect{0, 0, 4, 4}, procgrid::Rect{4, 0, 4, 4}};

  std::cout << "Virtual 8x4 process grid; ranks 0-3,8-11,16-19,24-27 form\n"
               "sibling 1 and the rest sibling 2 (paper Fig. 5a):\n\n";
  for (int y = grid.py() - 1; y >= 0; --y) {
    for (int x = 0; x < grid.px(); ++x)
      std::cout << std::setw(4) << grid.rank(x, y);
    std::cout << '\n';
  }

  const std::map<core::MapScheme, const char*> blurb{
      {core::MapScheme::xyzt, "topology-oblivious sequential (Fig. 5b)"},
      {core::MapScheme::txyz, "Blue Gene default TXYZ"},
      {core::MapScheme::partition, "partition mapping (Fig. 6a)"},
      {core::MapScheme::multilevel, "multi-level fold (Fig. 6b)"}};

  // Halo patterns.
  core::CommPattern parent_pat;
  for (int r = 0; r < grid.size(); ++r)
    for (int n : grid.neighbors(r)) parent_pat.add(r, n);
  auto sibling_pat = [&](const procgrid::Rect& rect) {
    core::CommPattern pat;
    for (int y = rect.y0; y < rect.y1(); ++y)
      for (int x = rect.x0; x < rect.x1(); ++x) {
        if (x + 1 < rect.x1()) pat.add(grid.rank(x, y), grid.rank(x + 1, y));
        if (y + 1 < rect.y1()) pat.add(grid.rank(x, y), grid.rank(x, y + 1));
      }
    return pat;
  };

  util::Table table({"scheme", "sib1 avg hops", "sib2 avg hops",
                     "parent avg hops", "parent max hops"});
  for (const auto& [scheme, label] : blurb) {
    const auto map = core::make_mapping(machine, grid, scheme, part);
    std::cout << "\n== " << core::to_string(scheme) << " — " << label
              << " ==\n";
    for (int z = 0; z < machine.torus_z; ++z) {
      std::cout << "z=" << z << ":\n";
      for (int y = machine.torus_y - 1; y >= 0; --y) {
        for (int x = 0; x < machine.torus_x; ++x) {
          int who = -1;
          for (int r = 0; r < map.nranks(); ++r)
            if (map.placement(r).node == topo::Coord3{x, y, z}) who = r;
          std::cout << std::setw(4) << who;
        }
        std::cout << '\n';
      }
    }
    table.add_row(
        {core::to_string(scheme),
         util::Table::num(core::average_hops(map, sibling_pat(part.rects[0])),
                          2),
         util::Table::num(core::average_hops(map, sibling_pat(part.rects[1])),
                          2),
         util::Table::num(core::average_hops(map, parent_pat), 2),
         std::to_string(core::max_hops(map, parent_pat))});
    if (mapfiles)
      map.write_mapfile("mapfile_" + core::to_string(scheme) + ".txt");
  }
  std::cout << '\n';
  table.print(std::cout, "Hop statistics by mapping scheme");
  if (mapfiles)
    std::cout << "\nMapfiles written as mapfile_<scheme>.txt\n";
  return 0;
}

/// \file moving_nest.cpp
/// Simulation steering demo (the paper's §6 future work): a depression
/// embedded in a balanced eastward steering flow drifts across the
/// parent domain while a moving nest follows it, relocating itself
/// whenever the storm approaches the nest boundary.
///
/// Usage: moving_nest [--hours=24] [--speed=6] [--margin=4]

#include <iostream>

#include "steer/tracker.hpp"
#include "swm/diagnostics.hpp"
#include "swm/init.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace nestwx;
  const util::Cli cli(argc, argv);
  const double hours = cli.get_double("hours", 24.0);
  const double speed = cli.get_double("speed", 6.0);
  const int margin = static_cast<int>(cli.get_int("margin", 4));

  swm::GridSpec g;
  g.nx = 96;
  g.ny = 64;
  g.dx = g.dy = 10e3;
  const double f = 1e-4;
  auto parent = swm::depression(g, f, 0.18, 0.5, 400.0, 8.0, 120e3);
  swm::add_zonal_flow(parent, f, speed);

  swm::ModelParams params;
  params.coriolis = f;
  params.viscosity = 500.0;
  params.boundary = swm::BoundaryKind::channel;
  nest::NestedSimulation sim(std::move(parent), params,
                             {nest::NestSpec{"storm-nest", 10, 24, 16, 16, 3}});
  steer::MovingNestController controller({margin, 2});

  const double dt = sim.stable_dt(0.4);
  const int steps = static_cast<int>(hours * 3600.0 / dt);
  std::cout << "moving_nest: 96x64 parent @10 km, 48x48 nest @3.3 km, "
            << "steering flow " << speed << " m/s, dt = "
            << util::Table::num(dt, 1) << " s, " << steps << " steps\n\n";

  util::Table log({"t (h)", "storm at parent (i,j)", "min eta (m)",
                   "nest anchor", "relocations so far"});
  for (int k = 1; k <= steps; ++k) {
    sim.advance(dt);
    controller.update(sim);
    if (k % std::max(1, steps / 12) == 0) {
      const auto fix = steer::locate_feature(sim, 0);
      const auto& spec = sim.sibling(0).spec();
      log.add_row({util::Table::num(k * dt / 3600.0, 1),
                   "(" + util::Table::num(fix.parent_i, 1) + "," +
                       util::Table::num(fix.parent_j, 1) + ")",
                   util::Table::num(fix.eta, 1),
                   "(" + std::to_string(spec.anchor_i) + "," +
                       std::to_string(spec.anchor_j) + ")",
                   std::to_string(controller.relocations().size())});
    }
  }
  log.print(std::cout, "Storm track and nest steering");

  std::cout << '\n';
  util::Table moves({"step", "old anchor", "new anchor"});
  for (const auto& ev : controller.relocations())
    moves.add_row({std::to_string(ev.step),
                   "(" + std::to_string(ev.old_anchor_i) + "," +
                       std::to_string(ev.old_anchor_j) + ")",
                   "(" + std::to_string(ev.new_anchor_i) + "," +
                       std::to_string(ev.new_anchor_j) + ")"});
  moves.print(std::cout, "Nest relocations");
  std::cout << "\nFinal state healthy: "
            << (swm::all_finite(sim.parent()) &&
                        swm::all_finite(sim.sibling(0).state())
                    ? "yes"
                    : "NO")
            << "\n";
  return 0;
}

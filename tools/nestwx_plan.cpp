/// \file nestwx_plan.cpp
/// Command-line planner: given a machine and a nested-domain
/// configuration, produce the processor allocation (Algorithm 1), the
/// topology-aware mapping (optionally written as a Blue Gene-style
/// mapfile), and the predicted per-iteration performance of the default
/// sequential strategy versus the concurrent strategy.
///
///   nestwx-plan --machine=bgp --cores=4096
///               --parent=286x307 --nests=394x418,232x202,313x337
///               --scheme=multilevel --mapfile=run.map --io
///
/// Flags:
///   --config=FILE            load a plan file (flags override it)
///   --machine=bgl|bgp        machine family            [bgp]
///   --cores=N                partition size            [1024]
///   --parent=WxH             parent domain points      [286x307]
///   --nests=WxH,WxH,...      sibling nest sizes        [394x418,232x202]
///   --ratio=R                refinement ratio          [3]
///   --allocator=huffman|huffman-single|strips|equal    [huffman]
///   --scheme=multilevel|partition|txyz|xyzt            [multilevel]
///   --io                     include I/O in the report
///   --mapfile=PATH           write the rank placement file
///   --csv=PATH               write the report table as CSV
///   --trace=PATH             write a chrome://tracing timeline

#include <iostream>
#include <sstream>

#include "core/planner.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/config_file.hpp"
#include "workload/configs.hpp"
#include "workload/machines.hpp"
#include "wrfsim/driver.hpp"
#include "wrfsim/trace.hpp"

namespace {

using namespace nestwx;

std::pair<int, int> parse_size(const std::string& text) {
  const auto x = text.find('x');
  NESTWX_REQUIRE(x != std::string::npos && x > 0 && x + 1 < text.size(),
                 "expected WxH, got: " + text);
  return {std::stoi(text.substr(0, x)), std::stoi(text.substr(x + 1))};
}

std::vector<std::pair<int, int>> parse_sizes(const std::string& list) {
  std::vector<std::pair<int, int>> out;
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(parse_size(item));
  NESTWX_REQUIRE(!out.empty(), "no nest sizes given");
  return out;
}

core::Allocator parse_allocator(const std::string& name) {
  if (name == "huffman") return core::Allocator::huffman;
  if (name == "huffman-single") return core::Allocator::huffman_single;
  if (name == "strips") return core::Allocator::naive_strips;
  if (name == "equal") return core::Allocator::equal;
  NESTWX_REQUIRE(false, "unknown allocator: " + name);
  return core::Allocator::huffman;
}

core::MapScheme parse_scheme(const std::string& name) {
  if (name == "multilevel") return core::MapScheme::multilevel;
  if (name == "partition") return core::MapScheme::partition;
  if (name == "txyz") return core::MapScheme::txyz;
  if (name == "xyzt") return core::MapScheme::xyzt;
  NESTWX_REQUIRE(false, "unknown mapping scheme: " + name);
  return core::MapScheme::multilevel;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Cli cli(argc, argv);
    // A --config plan file provides defaults; explicit flags override it.
    workload::PlanFile file;
    if (cli.has("config"))
      file = workload::load_plan_file(cli.get("config", ""));
    else
      file.nests = {{394, 418}, {232, 202}};
    const int cores = static_cast<int>(cli.get_int("cores", file.cores));
    const auto machine =
        cli.get("machine", file.machine) == "bgl"
            ? workload::bluegene_l(cores)
            : workload::bluegene_p(cores);
    const std::string default_parent =
        std::to_string(file.parent.first) + "x" +
        std::to_string(file.parent.second);
    const auto [pnx, pny] = parse_size(cli.get("parent", default_parent));
    auto nests = file.nests;
    if (cli.has("nests")) nests = parse_sizes(cli.get("nests", ""));
    const int ratio = static_cast<int>(cli.get_int("ratio", file.ratio));
    const auto allocator =
        parse_allocator(cli.get("allocator", file.allocator));
    const auto scheme = parse_scheme(cli.get("scheme", file.scheme));

    core::DomainSpec parent;
    parent.name = "parent";
    parent.nx = pnx;
    parent.ny = pny;
    parent.resolution_km = 24.0;
    parent.refinement_ratio = 1;
    auto config = workload::make_config("cli", parent, nests, ratio);
    for (const auto& [sib, size] : file.inner)
      workload::add_second_level(config, sib, size.first, size.second,
                                 ratio);

    std::cout << "nestwx-plan: " << machine.name << ", " << cores
              << " cores (" << machine.torus_x << "x" << machine.torus_y
              << "x" << machine.torus_z << " torus, "
              << topo::ranks_per_node(machine.mode, machine.cores_per_node)
              << " ranks/node)\n";

    const auto model = core::DelaunayPerfModel::fit(
        wrfsim::profile_basis(machine, core::default_basis_domains()));
    const auto plan = core::plan_execution(
        machine, config, model, core::Strategy::concurrent, allocator,
        scheme);
    std::cout << "virtual grid " << plan.parent_grid.px() << "x"
              << plan.parent_grid.py() << ", allocator "
              << core::to_string(allocator) << ", mapping "
              << core::to_string(scheme) << "\n\n";

    util::Table alloc({"nest", "size", "weight", "processors", "grid"});
    for (std::size_t s = 0; s < config.siblings.size(); ++s) {
      const auto& rect = plan.partition->rects[s];
      alloc.add_row(
          {config.siblings[s].name,
           std::to_string(config.siblings[s].nx) + "x" +
               std::to_string(config.siblings[s].ny),
           util::Table::num(plan.weights[s], 3),
           std::to_string(rect.area()),
           std::to_string(rect.w) + "x" + std::to_string(rect.h) + "@(" +
               std::to_string(rect.x0) + "," + std::to_string(rect.y0) +
               ")"});
    }
    alloc.print(std::cout, "Processor allocation");
    std::cout << '\n';

    wrfsim::RunOptions opt;
    opt.with_io = cli.has("io");
    const auto cmp = wrfsim::compare_strategies(machine, config, model,
                                                scheme, opt);
    const auto planned = wrfsim::simulate_run(machine, config, plan, opt);
    util::Table report({"strategy", "integration (s/iter)",
                        "I/O (s/iter)", "total (s/iter)",
                        "avg MPI_Wait (s)", "avg hops"});
    auto row = [&](const std::string& name, const wrfsim::RunResult& r) {
      report.add_row({name, util::Table::num(r.integration, 3),
                      util::Table::num(r.io_time, 3),
                      util::Table::num(r.total, 3),
                      util::Table::num(r.avg_wait, 3),
                      util::Table::num(r.avg_hops, 2)});
    };
    row("default sequential", cmp.sequential);
    row("concurrent, oblivious map", cmp.concurrent_oblivious);
    row("concurrent, " + core::to_string(scheme) + " (this plan)", planned);
    report.print(std::cout, "Predicted per-iteration performance");
    std::cout << "\nPredicted improvement over the default strategy: "
              << util::Table::num(util::improvement_pct(
                     cmp.sequential.total, planned.total), 1)
              << "%\n";

    if (cli.has("mapfile")) {
      const std::string path = cli.get("mapfile", "nestwx.map");
      plan.mapping->write_mapfile(path);
      std::cout << "mapfile written to " << path << "\n";
    }
    if (cli.has("csv")) report.write_csv(cli.get("csv", "nestwx_plan.csv"));
    if (cli.has("trace")) {
      const std::string path = cli.get("trace", "nestwx_trace.json");
      wrfsim::write_trace_json(path, config, plan, planned, 3);
      std::cout << "timeline written to " << path
                << " (open in chrome://tracing or ui.perfetto.dev)\n";
    }
    return 0;
  } catch (const nestwx::util::Error& e) {
    std::cerr << "nestwx-plan: " << e.what() << "\n";
    return 1;
  }
}

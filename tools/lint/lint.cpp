#include "lint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>

namespace nestwx::lint {

namespace fs = std::filesystem;

namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) lines.push_back(current);
  return lines;
}

/// Replace comments and string/char literals with spaces, preserving line
/// structure, so rule patterns never fire inside them. (Raw strings are
/// not handled; the codebase does not use them.)
std::string strip_comments_and_strings(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  enum class State { code, line_comment, block_comment, string, chr };
  State state = State::code;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    const char next = i + 1 < text.size() ? text[i + 1] : '\0';
    switch (state) {
      case State::code:
        if (c == '/' && next == '/') {
          state = State::line_comment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::block_comment;
          out += "  ";
          ++i;
        } else if (c == '"') {
          state = State::string;
          out += ' ';
        } else if (c == '\'') {
          state = State::chr;
          out += ' ';
        } else {
          out += c;
        }
        break;
      case State::line_comment:
        if (c == '\n') {
          state = State::code;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::block_comment:
        if (c == '*' && next == '/') {
          state = State::code;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::string:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '"') {
          state = State::code;
          out += ' ';
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::chr:
        if (c == '\\') {
          out += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::code;
          out += ' ';
        } else {
          out += ' ';
        }
        break;
    }
  }
  return out;
}

/// Parsed suppression pragmas of one file.
struct Suppressions {
  /// line (1-based) -> rules allowed on that line and the next.
  std::map<int, std::set<std::string>> by_line;
  std::set<std::string> file_wide;
  std::vector<Finding> bad_pragmas;
};

Suppressions parse_pragmas(const std::string& rel_path,
                           const std::vector<std::string>& raw_lines) {
  static const std::regex pragma_re(
      R"(nestwx-lint:\s*(allow|allow-file)\(([^)]*)\))");
  Suppressions sup;
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    std::smatch m;
    if (!std::regex_search(raw_lines[i], m, pragma_re)) continue;
    const int line = static_cast<int>(i) + 1;
    // The justification is mandatory: "... allow(rule) -- because X".
    const std::string after = m.suffix().str();
    const std::size_t dashes = after.find("--");
    if (dashes == std::string::npos ||
        trim(after.substr(dashes + 2)).empty()) {
      sup.bad_pragmas.push_back(
          {rel_path, line, "bad-pragma",
           "suppression without a justification; write "
           "\"nestwx-lint: allow(rule) -- why this is safe\""});
      continue;
    }
    std::set<std::string>& target = m[1] == "allow-file"
                                        ? sup.file_wide
                                        : sup.by_line[line];
    std::stringstream rules(m[2].str());
    std::string rule;
    while (std::getline(rules, rule, ',')) {
      rule = trim(rule);
      if (!rule.empty()) target.insert(rule);
    }
  }
  return sup;
}

bool suppressed(const Suppressions& sup, const std::string& rule, int line) {
  if (sup.file_wide.count(rule)) return true;
  for (int probe : {line, line - 1}) {
    auto it = sup.by_line.find(probe);
    if (it != sup.by_line.end() && it->second.count(rule)) return true;
  }
  return false;
}

/// Remove NESTWX_* annotation macros (with or without an argument list)
/// so they never perturb declaration classification.
std::string strip_nestwx_macros(const std::string& s) {
  static const std::regex macro_re(R"(NESTWX_[A-Z_0-9]+(\s*\([^()]*\))?)");
  return std::regex_replace(s, macro_re, "");
}

/// Remove balanced template argument lists so '(' inside e.g.
/// std::function<void()> does not read as a function declarator.
std::string strip_template_args(const std::string& s) {
  std::string out;
  int depth = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    // Heuristic: a '<' directly after an identifier opens template args.
    if (c == '<' &&
        (depth > 0 ||
         (i > 0 && (std::isalnum(static_cast<unsigned char>(s[i - 1])) ||
                    s[i - 1] == '_' || s[i - 1] == ':')))) {
      ++depth;
      continue;
    }
    if (depth > 0) {
      if (c == '>') --depth;
      continue;
    }
    out += c;
  }
  return out;
}

/// Identifiers appearing in an expression (for range-for targets).
std::vector<std::string> identifiers_in(const std::string& expr) {
  std::vector<std::string> ids;
  std::string current;
  for (char c : expr) {
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      current += c;
    } else if (!current.empty()) {
      ids.push_back(current);
      current.clear();
    }
  }
  if (!current.empty()) ids.push_back(current);
  return ids;
}

/// Names declared (or aliased) in this file with an unordered container
/// type. Covers `std::unordered_map<...> name`, `using Alias =
/// std::unordered_set<...>` plus declarations through such aliases.
std::set<std::string> unordered_names(const std::string& stripped) {
  std::set<std::string> names;
  std::set<std::string> alias_types;
  static const std::regex use_re(
      R"(\bstd\s*::\s*unordered_(?:multi)?(?:map|set)\s*<)");
  auto begin = std::sregex_iterator(stripped.begin(), stripped.end(), use_re);
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    // Walk past the balanced <...> to find what is being declared.
    std::size_t pos = static_cast<std::size_t>(it->position()) +
                      static_cast<std::size_t>(it->length());
    int depth = 1;
    while (pos < stripped.size() && depth > 0) {
      if (stripped[pos] == '<') ++depth;
      if (stripped[pos] == '>') --depth;
      ++pos;
    }
    while (pos < stripped.size() &&
           (std::isspace(static_cast<unsigned char>(stripped[pos])) ||
            stripped[pos] == '&' || stripped[pos] == '*'))
      ++pos;
    std::string ident;
    while (pos < stripped.size() &&
           (std::isalnum(static_cast<unsigned char>(stripped[pos])) ||
            stripped[pos] == '_'))
      ident += stripped[pos++];
    // `using Alias = std::unordered_map<...>;` names the alias *before*
    // the type (nothing follows it), so check the statement prefix first.
    const std::size_t stmt_begin =
        stripped.rfind(';', static_cast<std::size_t>(it->position()));
    const std::string prefix = stripped.substr(
        stmt_begin == std::string::npos ? 0 : stmt_begin + 1,
        static_cast<std::size_t>(it->position()) -
            (stmt_begin == std::string::npos ? 0 : stmt_begin + 1));
    std::smatch am;
    static const std::regex alias_re(R"(\busing\s+(\w+)\s*=\s*$)");
    if (std::regex_search(prefix, am, alias_re))
      alias_types.insert(am[1].str());
    else if (!ident.empty())
      names.insert(ident);
  }
  // Declarations through an alias: `Alias name;` / `const Alias& name`.
  for (const std::string& alias : alias_types) {
    const std::regex decl_re("\\b" + alias + R"(\b\s*[&*]?\s*(\w+))");
    auto dbegin =
        std::sregex_iterator(stripped.begin(), stripped.end(), decl_re);
    for (auto it = dbegin; it != std::sregex_iterator(); ++it)
      names.insert((*it)[1].str());
  }
  return names;
}

/// The expression after the top-level ':' of a range-for, or empty.
std::string range_for_expr(const std::string& line) {
  const std::size_t for_pos = line.find("for");
  if (for_pos == std::string::npos) return "";
  const std::size_t open = line.find('(', for_pos);
  if (open == std::string::npos) return "";
  int depth = 0;
  for (std::size_t i = open; i < line.size(); ++i) {
    if (line[i] == '(') ++depth;
    if (line[i] == ')' && --depth == 0) {
      const std::string inside = line.substr(open + 1, i - open - 1);
      // A top-level ':' that is not part of '::' makes it a range-for.
      for (std::size_t j = 0; j < inside.size(); ++j) {
        if (inside[j] != ':') continue;
        if (j + 1 < inside.size() && inside[j + 1] == ':') {
          ++j;
          continue;
        }
        if (j > 0 && inside[j - 1] == ':') continue;
        return inside.substr(j + 1);
      }
      return "";
    }
  }
  return "";
}

void check_unordered_iteration(const std::string& rel_path,
                               const std::vector<std::string>& lines,
                               const std::set<std::string>& names,
                               const Suppressions& sup,
                               std::vector<Finding>& out) {
  if (names.empty()) return;
  // `.begin()` is what starts an iteration; a bare `.end()` is almost
  // always the sentinel of a find() lookup, which is order-safe.
  static const std::regex begin_re(R"((\w+)\s*\.\s*c?r?begin\s*\()");
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const int lineno = static_cast<int>(i) + 1;
    std::string hit;
    const std::string expr = range_for_expr(lines[i]);
    for (const std::string& id : identifiers_in(expr))
      if (names.count(id)) hit = id;
    if (hit.empty()) {
      std::smatch m;
      std::string rest = lines[i];
      while (std::regex_search(rest, m, begin_re)) {
        if (names.count(m[1].str())) {
          hit = m[1].str();
          break;
        }
        rest = m.suffix().str();
      }
    }
    if (hit.empty() || suppressed(sup, "unordered-iteration", lineno))
      continue;
    out.push_back({rel_path, lineno, "unordered-iteration",
                   "iterating unordered container '" + hit +
                       "': iteration order is not deterministic; iterate "
                       "a sorted copy or keep ordered state alongside"});
  }
}

struct Pattern {
  std::regex re;
  std::string what;
};

void check_patterns(const std::string& rel_path,
                    const std::vector<std::string>& lines,
                    const std::vector<Pattern>& patterns,
                    const std::string& rule, const std::string& advice,
                    const Suppressions& sup, std::vector<Finding>& out) {
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const int lineno = static_cast<int>(i) + 1;
    for (const Pattern& p : patterns) {
      if (!std::regex_search(lines[i], p.re)) continue;
      if (!suppressed(sup, rule, lineno))
        out.push_back({rel_path, lineno, rule, p.what + "; " + advice});
      break;
    }
  }
}

const std::vector<Pattern>& wall_clock_patterns() {
  static const std::vector<Pattern> patterns = {
      {std::regex(R"(\bsystem_clock\b)"), "wall-clock std::chrono::system_clock"},
      {std::regex(R"(\bsteady_clock\b)"), "wall-clock std::chrono::steady_clock"},
      {std::regex(R"(\bhigh_resolution_clock\b)"),
       "wall-clock std::chrono::high_resolution_clock"},
      {std::regex(R"(\bgettimeofday\s*\()"), "wall-clock gettimeofday()"},
      {std::regex(R"(\bclock_gettime\s*\()"), "wall-clock clock_gettime()"},
      {std::regex(R"(\bstd\s*::\s*time\b)"), "wall-clock std::time"},
  };
  return patterns;
}

const std::vector<Pattern>& raw_rng_patterns() {
  static const std::vector<Pattern> patterns = {
      {std::regex(R"(\bstd\s*::\s*rand\b|\brand\s*\(\s*\))"), "rand()"},
      {std::regex(R"(\bsrand\s*\()"), "srand()"},
      {std::regex(R"(\brandom_device\b)"), "std::random_device"},
  };
  return patterns;
}

const std::vector<Pattern>& raw_alloc_patterns() {
  static const std::vector<Pattern> patterns = {
      {std::regex(R"(\bnew\s+[^;({]*\[)"), "raw array new[]"},
      {std::regex(R"(\bmalloc\s*\()"), "malloc()"},
      {std::regex(R"(\bcalloc\s*\()"), "calloc()"},
      {std::regex(R"(\brealloc\s*\()"), "realloc()"},
      {std::regex(R"(\bfree\s*\()"), "free()"},
  };
  return patterns;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Every C++ source under <root>/src, sorted for deterministic reports.
std::vector<fs::path> source_files(const std::string& root) {
  std::vector<fs::path> files;
  const fs::path src = fs::path(root) / "src";
  if (fs::exists(src)) {
    for (const auto& entry : fs::recursive_directory_iterator(src)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc")
        files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

int count_struct_fields(const std::string& header_content,
                        const std::string& struct_name) {
  const std::string stripped = strip_comments_and_strings(header_content);
  static const std::string kinds[] = {"struct", "class"};
  std::size_t body = std::string::npos;
  for (const std::string& kind : kinds) {
    const std::regex head_re("\\b" + kind + "\\s+" + struct_name +
                             R"(\b[^;{]*\{)");
    std::smatch m;
    if (std::regex_search(stripped, m, head_re)) {
      body = static_cast<std::size_t>(m.position()) +
             static_cast<std::size_t>(m.length());
      break;
    }
  }
  if (body == std::string::npos) return -1;

  int fields = 0;
  int depth = 1;
  std::string stmt;
  auto classify = [&]() {
    std::string s = trim(strip_template_args(strip_nestwx_macros(stmt)));
    stmt.clear();
    if (s.empty()) return;
    static const std::regex skip_re(
        R"(^(using|typedef|static|friend|template|struct|class|enum|union|public|private|protected)\b)");
    if (std::regex_search(s, skip_re)) return;
    // A '(' before any '=' marks a function declarator; after an '=' it
    // is just a call in a default member initializer.
    const std::size_t paren = s.find('(');
    const std::size_t eq = s.find('=');
    if (paren != std::string::npos &&
        (eq == std::string::npos || paren < eq))
      return;
    ++fields;
  };
  for (std::size_t i = body; i < stripped.size() && depth > 0; ++i) {
    const char c = stripped[i];
    if (c == '{') {
      // A body at member scope (inline function / nested type): whatever
      // introduced it is not a plain field statement. Discard and skip.
      if (depth == 1) stmt.clear();
      ++depth;
    } else if (c == '}') {
      --depth;
    } else if (depth == 1) {
      if (c == ';') {
        classify();
      } else if (c == ':') {
        // Access specifiers terminate with ':' rather than ';'.
        const std::string t = trim(stmt);
        if (t == "public" || t == "private" || t == "protected")
          stmt.clear();
        else
          stmt += c;
      } else {
        stmt += c;
      }
    }
  }
  return fields;
}

void lint_source(const std::string& rel_path, const std::string& content,
                 std::vector<Finding>& out) {
  const std::vector<std::string> raw_lines = split_lines(content);
  const Suppressions sup = parse_pragmas(rel_path, raw_lines);
  for (const Finding& f : sup.bad_pragmas) out.push_back(f);

  const std::string stripped = strip_comments_and_strings(content);
  const std::vector<std::string> lines = split_lines(stripped);

  const bool in_src = starts_with(rel_path, "src/");
  const bool in_util = starts_with(rel_path, "src/util/");
  const bool in_swm = starts_with(rel_path, "src/swm/");

  if (in_src)
    check_unordered_iteration(rel_path, lines, unordered_names(stripped),
                              sup, out);
  if (in_src && !in_util) {
    check_patterns(rel_path, lines, wall_clock_patterns(), "wall-clock",
                   "library code runs on util::VirtualClock virtual time; "
                   "wall-clock measurement belongs in bench/",
                   sup, out);
    check_patterns(rel_path, lines, raw_rng_patterns(), "raw-rng",
                   "draw from the seeded util::Rng so runs replay exactly",
                   sup, out);
  }
  if (in_swm)
    check_patterns(rel_path, lines, raw_alloc_patterns(), "raw-alloc",
                   "kernel buffers are Field2D or std::vector so the "
                   "bounds-checked and sanitizer tiers see every access",
                   sup, out);
}

void lint_plan_key(const std::string& root, std::vector<Finding>& out) {
  // The canonical manifest lives next to the plan-key fingerprint; a
  // tree without it (most lint fixtures) opts out of the rule entirely.
  const std::string anchor_rel = "src/core/plan_key.cpp";
  if (!fs::exists(fs::path(root) / anchor_rel)) return;

  // Manifest entries may live in ANY source file: each subsystem
  // registers the structs feeding its own fingerprint (core's plan key
  // in plan_key.cpp, the chaos layer's policy fingerprint in
  // chaos_plan.cpp) next to that fingerprint's implementation, and a
  // finding points at the pragma that made the claim.
  static const std::regex entry_re(
      R"(nestwx-lint:\s*plan-key-fields\(\s*([^:()\s]+)\s*:\s*(\w+)\s*=\s*(\d+)\s*\))");
  bool any = false;
  for (const fs::path& file : source_files(root)) {
    const std::string manifest_rel =
        fs::relative(file, fs::path(root)).generic_string();
    const std::vector<std::string> lines = split_lines(read_file(file));
    for (std::size_t i = 0; i < lines.size(); ++i) {
      std::smatch m;
      if (!std::regex_search(lines[i], m, entry_re)) continue;
      any = true;
      const int lineno = static_cast<int>(i) + 1;
      const std::string header_rel = m[1].str();
      const std::string struct_name = m[2].str();
      const int expected = std::stoi(m[3].str());
      const fs::path header_path = fs::path(root) / header_rel;
      if (!fs::exists(header_path)) {
        out.push_back({manifest_rel, lineno, "plan-key-fields",
                       "manifest names missing header " + header_rel});
        continue;
      }
      const int actual =
          count_struct_fields(read_file(header_path), struct_name);
      if (actual < 0) {
        out.push_back({manifest_rel, lineno, "plan-key-fields",
                       "struct " + struct_name + " not found in " +
                           header_rel});
        continue;
      }
      if (actual != expected)
        out.push_back(
            {manifest_rel, lineno, "plan-key-fields",
             struct_name + " in " + header_rel + " has " +
                 std::to_string(actual) +
                 " fields but the manifest says " +
                 std::to_string(expected) +
                 ": if you added a policy or planning input, extend the "
                 "owning fingerprint() to mix it, then update the "
                 "manifest count in " +
                 manifest_rel});
    }
  }
  if (!any)
    out.push_back({anchor_rel, 0, "plan-key-fields",
                   "no plan-key-fields manifest found; planning-input "
                   "structs must be registered so fingerprint coverage "
                   "is checked"});
}

std::vector<Finding> lint_tree(const std::string& root) {
  std::vector<Finding> out;
  for (const fs::path& file : source_files(root)) {
    const std::string rel =
        fs::relative(file, fs::path(root)).generic_string();
    lint_source(rel, read_file(file), out);
  }
  lint_plan_key(root, out);
  return out;
}

std::string format_findings(const std::vector<Finding>& findings) {
  std::ostringstream os;
  for (const Finding& f : findings) {
    os << f.file;
    if (f.line > 0) os << ':' << f.line;
    os << ": [" << f.rule << "] " << f.message << '\n';
  }
  return os.str();
}

}  // namespace nestwx::lint

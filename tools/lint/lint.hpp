#pragma once
/// \file lint.hpp
/// nestwx-lint: project-specific static checks for the determinism and
/// thread-count-invariance contracts (see CONTRIBUTING.md, "Static
/// analysis gates").
///
/// Generic tools (clang-tidy, -Wthread-safety) cannot know this
/// codebase's invariants: reports must be byte-identical at any thread
/// count, simulated time is virtual, randomness is seeded, and plan-cache
/// fingerprints must cover every planning input. nestwx-lint encodes
/// those rules as fast, dependency-free source scans that run in CI and
/// via `cmake --build build --target lint`.
///
/// Rules (rule ids in brackets):
///  [unordered-iteration]  No iteration over std::unordered_map/set
///       anywhere under src/: iteration order is libstdc++-version- and
///       hash-seed-dependent, so anything derived from it (reports, JSON,
///       goldens) silently loses byte-identity. Look ups are fine; iterate
///       a sorted copy, or suppress where order provably cannot escape.
///  [wall-clock]   No std::chrono::{system,steady,high_resolution}_clock,
///       ::time(), gettimeofday or clock_gettime outside src/util/:
///       simulated time comes from util::VirtualClock, and wall-clock
///       timings belong in bench/, never in library code paths.
///  [raw-rng]      No rand()/srand()/std::random_device outside
///       src/util/: all randomness draws from the seeded util::Rng so
///       every experiment replays exactly.
///  [raw-alloc]    No raw new[]/malloc/calloc/realloc/free in src/swm/:
///       kernel buffers are Field2D or std::vector, so sanitizer builds
///       and the bounds-checked tier see every access.
///  [plan-key-fields]  Planning-input structs listed in the manifest in
///       src/core/plan_key.cpp must have exactly the field count the
///       manifest records. Adding a field to MachineParams without
///       extending fingerprint() would alias cache entries across
///       genuinely different inputs — this rule turns that silent
///       corruption into a build failure.
///  [bad-pragma]   A nestwx-lint suppression without a justification.
///
/// Suppressions: a comment anywhere on the offending line or the line
/// directly above it —
///     // nestwx-lint: allow(rule-id[, rule-id...]) -- <justification>
/// The ` -- justification` part is mandatory. A file-wide variant
/// `allow-file(...)` exists for fixtures and generated code.

#include <string>
#include <vector>

namespace nestwx::lint {

struct Finding {
  std::string file;  ///< path as given to the linter
  int line = 0;      ///< 1-based; 0 for file-level findings
  std::string rule;
  std::string message;
};

/// Lint one translation unit. `rel_path` is the path relative to the
/// repository root (with '/' separators) — it drives rule scoping
/// (e.g. wall-clock is exempt under src/util/). Appends to `out`.
void lint_source(const std::string& rel_path, const std::string& content,
                 std::vector<Finding>& out);

/// Check the plan-key field-count manifest in src/core/plan_key.cpp
/// against the struct definitions it names. `root` is the repository
/// root. Appends to `out`.
void lint_plan_key(const std::string& root, std::vector<Finding>& out);

/// Lint every .hpp/.cpp under `root`/src plus the plan-key manifest.
std::vector<Finding> lint_tree(const std::string& root);

/// Count the data members of `struct_name` inside `header_content`.
/// Returns -1 when the struct is not found. Counts `;`-terminated
/// declarations at brace depth 1 that are not functions, usings, access
/// specifiers, friends or nested types (exposed for the manifest check
/// and its tests).
int count_struct_fields(const std::string& header_content,
                        const std::string& struct_name);

/// Render findings as "file:line: [rule] message" lines.
std::string format_findings(const std::vector<Finding>& findings);

}  // namespace nestwx::lint

/// \file nestwx_lint_main.cpp
/// CLI for nestwx-lint (see lint.hpp for the rule catalogue).
///
/// Usage:
///   nestwx-lint [--root=DIR]
///   nestwx-lint [--root=DIR] --count-fields=src/path/hdr.hpp:Struct
///
/// The second form prints the field count the plan-key-fields rule would
/// compute for one struct — use it to fill in the manifest in
/// src/core/plan_key.cpp after changing a planning-input struct.
///
/// Lints every C++ source under DIR/src (default: the current directory)
/// plus the plan-key fingerprint manifest, printing findings as
/// `file:line: [rule] message`. Exits 1 when there are findings, 0 when
/// clean — fit for CI and the `lint` build target.

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "lint.hpp"

int main(int argc, char** argv) {
  std::string root = ".";
  std::string count_target;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--root=", 0) == 0) {
      root = arg.substr(std::strlen("--root="));
    } else if (arg.rfind("--count-fields=", 0) == 0) {
      count_target = arg.substr(std::strlen("--count-fields="));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: nestwx-lint [--root=DIR]\n"
                << "Project-specific determinism/concurrency lints over "
                   "DIR/src (see CONTRIBUTING.md).\n"
                << "Rules: unordered-iteration, wall-clock, raw-rng, "
                   "raw-alloc, plan-key-fields, bad-pragma.\n"
                << "Suppress with: // nestwx-lint: allow(rule) -- why\n";
      return 0;
    } else {
      std::cerr << "nestwx-lint: unknown argument " << arg << '\n';
      return 2;
    }
  }

  if (!count_target.empty()) {
    const std::size_t colon = count_target.rfind(':');
    if (colon == std::string::npos) {
      std::cerr << "nestwx-lint: --count-fields wants path:Struct\n";
      return 2;
    }
    std::ifstream in(root + "/" + count_target.substr(0, colon),
                     std::ios::binary);
    if (!in) {
      std::cerr << "nestwx-lint: cannot read "
                << count_target.substr(0, colon) << '\n';
      return 2;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const int n = nestwx::lint::count_struct_fields(
        ss.str(), count_target.substr(colon + 1));
    if (n < 0) {
      std::cerr << "nestwx-lint: struct " << count_target.substr(colon + 1)
                << " not found\n";
      return 2;
    }
    std::cout << n << '\n';
    return 0;
  }

  const auto findings = nestwx::lint::lint_tree(root);
  std::cout << nestwx::lint::format_findings(findings);
  if (findings.empty()) {
    std::cout << "nestwx-lint: clean\n";
    return 0;
  }
  std::cout << "nestwx-lint: " << findings.size() << " finding"
            << (findings.size() == 1 ? "" : "s") << '\n';
  return 1;
}

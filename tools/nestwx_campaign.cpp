/// \file nestwx_campaign.cpp
/// Command-line campaign scheduler: execute an ensemble of nested
/// configurations concurrently on one machine, space-sharing the torus
/// among the members (the paper's divide and conquer applied at campaign
/// level), and report makespan, throughput, latency percentiles and plan
/// cache effectiveness.
///
///   nestwx-campaign --machine=bgp --cores=2048 --members=16
///                   --threads=4 --json=campaign.json
///
/// Flags:
///   --machine=bgl|bgp        machine family                     [bgp]
///   --cores=N                partition size                     [2048]
///   --members=N              random ensemble size               [8]
///   --seed=N                 ensemble generator seed            [42]
///   --duplicates=K           repeat the ensemble K times (plan
///                            cache exercise)                    [1]
///   --iterations=N           virtual iterations per member      [100]
///   --threads=N              host worker threads                [4]
///   --sharing=space|time     machine sharing mode               [space]
///   --max-concurrent=N       members per wave (0 = face limit)  [0]
///   --no-cache               disable the plan cache
///   --repeat=R               run the campaign R times against the
///                            same scheduler (warm-cache demo)   [1]
///   --allocator=huffman|huffman-single|strips|equal             [huffman]
///   --scheme=multilevel|partition|txyz|xyzt                     [multilevel]
///   --io                     include I/O in every member run
///   --json=PATH              write the (deterministic) JSON report
///
/// Fault injection (enables the elastic-recovery scheduler):
///   --faults=SCRIPT          explicit plan "t:kind:x:y[:axis];..."
///   --fault-count=N          random faults (with --fault-seed)     [0]
///   --fault-seed=N           fault plan generator seed             [1]
///   --fault-horizon=S        random fault window; 0 = measure the
///                            fault-free makespan and use that      [0]
///   --fault-link-fraction=F  link share of random faults           [0.25]
///   --checkpoint-every=K     iterations between checkpoints        [10]
///   --detect-seconds=S       fault detection + relaunch latency    [30]

#include <chrono>
#include <iostream>

#include "campaign/campaign.hpp"
#include "fault/recovery.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "workload/configs.hpp"
#include "workload/machines.hpp"

namespace {

using namespace nestwx;

core::Allocator parse_allocator(const std::string& name) {
  if (name == "huffman") return core::Allocator::huffman;
  if (name == "huffman-single") return core::Allocator::huffman_single;
  if (name == "strips") return core::Allocator::naive_strips;
  if (name == "equal") return core::Allocator::equal;
  NESTWX_REQUIRE(false, "unknown allocator: " + name);
  return core::Allocator::huffman;
}

core::MapScheme parse_scheme(const std::string& name) {
  if (name == "multilevel") return core::MapScheme::multilevel;
  if (name == "partition") return core::MapScheme::partition;
  if (name == "txyz") return core::MapScheme::txyz;
  if (name == "xyzt") return core::MapScheme::xyzt;
  NESTWX_REQUIRE(false, "unknown mapping scheme: " + name);
  return core::MapScheme::multilevel;
}

campaign::Sharing parse_sharing(const std::string& name) {
  if (name == "space") return campaign::Sharing::space;
  if (name == "time") return campaign::Sharing::time;
  NESTWX_REQUIRE(false, "unknown sharing mode: " + name);
  return campaign::Sharing::space;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Cli cli(argc, argv);
    const int cores = static_cast<int>(cli.get_int("cores", 2048));
    const auto machine = cli.get("machine", "bgp") == "bgl"
                             ? workload::bluegene_l(cores)
                             : workload::bluegene_p(cores);
    const int n_members = static_cast<int>(cli.get_int("members", 8));
    const int duplicates = static_cast<int>(cli.get_int("duplicates", 1));
    const int iterations = static_cast<int>(cli.get_int("iterations", 100));
    const int repeat = static_cast<int>(cli.get_int("repeat", 1));
    NESTWX_REQUIRE(n_members >= 1 && duplicates >= 1 && repeat >= 1,
                   "--members, --duplicates and --repeat must be positive");
    const auto allocator =
        parse_allocator(cli.get("allocator", "huffman"));
    const auto scheme = parse_scheme(cli.get("scheme", "multilevel"));

    campaign::CampaignOptions options;
    options.threads = static_cast<int>(cli.get_int("threads", 4));
    options.sharing = parse_sharing(cli.get("sharing", "space"));
    options.max_concurrent =
        static_cast<int>(cli.get_int("max-concurrent", 0));
    options.use_plan_cache = !cli.has("no-cache");
    options.run.with_io = cli.has("io");

    // Deterministic random ensemble, optionally duplicated to mimic the
    // heavy configuration reuse of real forecast campaigns.
    util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 42)));
    const auto configs = workload::random_configs(rng, n_members);
    std::vector<campaign::MemberSpec> members;
    for (int d = 0; d < duplicates; ++d) {
      for (int i = 0; i < n_members; ++i) {
        campaign::MemberSpec spec;
        spec.name = "member" + std::to_string(d * n_members + i);
        spec.config = configs[i];
        spec.iterations = iterations;
        spec.allocator = allocator;
        spec.scheme = scheme;
        members.push_back(std::move(spec));
      }
    }

    std::cout << "nestwx-campaign: " << machine.name << ", " << cores
              << " cores (" << machine.torus_x << "x" << machine.torus_y
              << "x" << machine.torus_z << " torus), "
              << members.size() << " members, sharing="
              << campaign::to_string(options.sharing) << ", threads="
              << options.threads << "\n";
    std::cout << "fitting perf model (profiling "
              << core::default_basis_domains().size()
              << " basis domains)...\n";
    auto scheduler = campaign::CampaignScheduler::with_profiled_model(machine);

    // --- Fault plan, when requested: explicit script or seeded random.
    fault::FaultOptions fault_options;
    bool with_faults = false;
    if (cli.has("faults")) {
      fault_options.plan = fault::FaultPlan::parse(cli.get("faults", ""));
      with_faults = true;
    } else if (cli.get_int("fault-count", 0) > 0) {
      double horizon = cli.get_double("fault-horizon", 0.0);
      if (horizon <= 0.0) {
        // No window given: measure the fault-free makespan and spread the
        // faults across it (the dry run also pre-warms the plan cache).
        horizon = scheduler.run(members, options).metrics.makespan;
        std::cout << "fault horizon from fault-free makespan: "
                  << util::Table::num(horizon, 1) << " s\n";
      }
      fault_options.plan = fault::FaultPlan::random(
          static_cast<std::uint64_t>(cli.get_int("fault-seed", 1)),
          static_cast<int>(cli.get_int("fault-count", 0)), horizon,
          machine.torus_x, machine.torus_y,
          cli.get_double("fault-link-fraction", 0.25));
      with_faults = true;
    }
    fault_options.checkpoint_every =
        static_cast<int>(cli.get_int("checkpoint-every", 10));
    fault_options.detect_seconds = cli.get_double("detect-seconds", 30.0);

    campaign::CampaignReport report;
    fault::FaultCampaignReport fault_report;
    if (with_faults) {
      const auto t0 = std::chrono::steady_clock::now();
      fault_report =
          fault::run_with_faults(scheduler, members, options, fault_options);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      report = fault_report.campaign;
      std::cout << "fault campaign: wall " << util::Table::num(wall, 2)
                << " s, " << fault_options.plan.events.size()
                << " scripted fault(s)\n";
    } else {
      for (int r = 0; r < repeat; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        report = scheduler.run(members, options);
        const double wall =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        std::cout << "campaign run " << (r + 1) << "/" << repeat << ": wall "
                  << util::Table::num(wall, 2) << " s, host throughput "
                  << util::Table::num(members.size() / wall, 2)
                  << " members/s, cache hit rate "
                  << util::Table::num(100.0 * report.metrics.cache_hit_rate,
                                      1)
                  << "%\n";
      }
    }
    std::cout << '\n';

    util::Table table({"member", "wave", "sub-torus", "ranks", "weight",
                       "cache", "s/iter", "run (s)", "done at (s)"});
    for (const auto& m : report.members) {
      table.add_row(
          {m.name, std::to_string(m.wave),
           std::to_string(m.rect.w) + "x" + std::to_string(m.rect.h) + "@(" +
               std::to_string(m.rect.x0) + "," + std::to_string(m.rect.y0) +
               ")",
           std::to_string(m.ranks), util::Table::num(m.weight, 3),
           m.cache_hit ? "hit" : "miss", util::Table::num(m.run.total, 3),
           util::Table::num(m.run_seconds, 1),
           util::Table::num(m.completion_seconds, 1)});
    }
    table.print(std::cout, "Member schedule (virtual time)");

    const auto& metrics = report.metrics;
    std::cout << "\nmakespan " << util::Table::num(metrics.makespan, 1)
              << " s over " << metrics.waves << " wave(s), throughput "
              << util::Table::num(metrics.throughput * 3600.0, 2)
              << " members/h, latency p50/p90/p99 "
              << util::Table::num(metrics.latency_p50, 1) << "/"
              << util::Table::num(metrics.latency_p90, 1) << "/"
              << util::Table::num(metrics.latency_p99, 1) << " s, cache "
              << metrics.cache_hits << " hit / " << metrics.cache_misses
              << " miss\n";

    if (with_faults) {
      if (!fault_report.recoveries.empty()) {
        util::Table recoveries({"member", "t (s)", "fault", "old rect",
                                "new rect", "resume", "lost (s)",
                                "recovery (s)"});
        for (const auto& rec : fault_report.recoveries) {
          recoveries.add_row(
              {rec.name, util::Table::num(rec.event.time, 1),
               fault::to_string(rec.event.kind) + "(" +
                   std::to_string(rec.event.x) + "," +
                   std::to_string(rec.event.y) + ")",
               rec.old_rect.to_string(), rec.new_rect.to_string(),
               std::to_string(rec.resume_iteration),
               util::Table::num(rec.lost_seconds, 1),
               util::Table::num(rec.recovery_seconds, 1)});
        }
        std::cout << '\n';
        recoveries.print(std::cout, "Recoveries (virtual time)");
      }
      const auto& fm = fault_report.metrics;
      std::cout << "\nfaults " << fm.faults_injected << " injected ("
                << fm.faults_idle << " idle, " << fm.faults_after_end
                << " after end), " << fm.recoveries << " recoveries over "
                << fm.members_affected << " member(s), "
                << fm.failed_nodes << " node(s) down, lost "
                << util::Table::num(fm.lost_seconds, 1) << " s, recovery "
                << util::Table::num(fm.recovery_seconds, 1) << " s, goodput "
                << util::Table::num(100.0 * fm.goodput, 1) << "%\n";
    }

    if (cli.has("json")) {
      const std::string path = cli.get("json", "nestwx_campaign.json");
      if (with_faults) {
        fault::write_report_json(path, fault_report, machine, options,
                                 fault_options);
      } else {
        campaign::write_report_json(path, report, machine, options);
      }
      std::cout << "report written to " << path << "\n";
    }
    return 0;
  } catch (const nestwx::util::Error& e) {
    std::cerr << "nestwx-campaign: " << e.what() << "\n";
    return 1;
  }
}

/// \file nestwx_campaign.cpp
/// Command-line campaign scheduler: execute an ensemble of nested
/// configurations concurrently on one machine, space-sharing the torus
/// among the members (the paper's divide and conquer applied at campaign
/// level), and report makespan, throughput, latency percentiles and plan
/// cache effectiveness.
///
///   nestwx-campaign --machine=bgp --cores=2048 --members=16
///                   --threads=4 --json=campaign.json
///
/// Flags:
///   --machine=bgl|bgp        machine family                     [bgp]
///   --cores=N                partition size                     [2048]
///   --members=N              random ensemble size               [8]
///   --seed=N                 ensemble generator seed            [42]
///   --duplicates=K           repeat the ensemble K times (plan
///                            cache exercise)                    [1]
///   --iterations=N           virtual iterations per member      [100]
///   --threads=N              host worker threads                [4]
///   --sharing=space|time     machine sharing mode               [space]
///   --max-concurrent=N       members per wave (0 = face limit)  [0]
///   --no-cache               disable the plan cache
///   --cache-capacity=N       bound the plan cache to N ready plans
///                            (deterministic LRU eviction; 0 = unbounded)
///   --repeat=R               run the campaign R times against the
///                            same scheduler (warm-cache demo)   [1]
///   --allocator=huffman|huffman-single|strips|equal             [huffman]
///   --scheme=multilevel|partition|txyz|xyzt                     [multilevel]
///   --io                     include I/O in every member run
///   --json=PATH              write the (deterministic) JSON report
///
/// Fault injection (enables the elastic-recovery scheduler):
///   --faults=SCRIPT          explicit plan "t:kind:x:y[:axis];..."
///   --fault-count=N          random faults (with --fault-seed)     [0]
///   --fault-seed=N           fault plan generator seed             [1]
///   --fault-horizon=S        random fault window; 0 = measure the
///                            fault-free makespan and use that      [0]
///   --fault-link-fraction=F  link share of random faults           [0.25]
///   --checkpoint-every=K     iterations between checkpoints        [10]
///   --detect-seconds=S       fault detection + relaunch latency    [30]
///
/// Numerical guard (real shallow-water proxy integrations):
///   --guard                  run a small guarded SWM proxy of every
///                            member (blow-up monitor, rollback + halved
///                            dt retries, sibling quarantine); a member
///                            that still blows up is reported failed
///                            without aborting the campaign
///   --guard-steps=N          parent steps per guarded proxy run    [12]
///   --inject-blowup          seed a blow-up spike in member 0's last
///                            nest (deterministic guard demo)
///   --incident-log=PATH      write the merged per-member guard incident
///                            log (deterministic JSON); also enables
///                            hardened on-disk checkpoints every
///                            --checkpoint-every guarded steps, at
///                            PATH-derived prefixes

#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>

#include "campaign/campaign.hpp"
#include "fault/recovery.hpp"
#include "nest/simulation.hpp"
#include "resilience/guarded_run.hpp"
#include "swm/init.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "workload/configs.hpp"
#include "workload/machines.hpp"

namespace {

using namespace nestwx;

core::Allocator parse_allocator(const std::string& name) {
  if (name == "huffman") return core::Allocator::huffman;
  if (name == "huffman-single") return core::Allocator::huffman_single;
  if (name == "strips") return core::Allocator::naive_strips;
  if (name == "equal") return core::Allocator::equal;
  NESTWX_REQUIRE(false, "unknown allocator: " + name);
  return core::Allocator::huffman;
}

core::MapScheme parse_scheme(const std::string& name) {
  if (name == "multilevel") return core::MapScheme::multilevel;
  if (name == "partition") return core::MapScheme::partition;
  if (name == "txyz") return core::MapScheme::txyz;
  if (name == "xyzt") return core::MapScheme::xyzt;
  NESTWX_REQUIRE(false, "unknown mapping scheme: " + name);
  return core::MapScheme::multilevel;
}

campaign::Sharing parse_sharing(const std::string& name) {
  if (name == "space") return campaign::Sharing::space;
  if (name == "time") return campaign::Sharing::time;
  NESTWX_REQUIRE(false, "unknown sharing mode: " + name);
  return campaign::Sharing::space;
}

/// Parent of a guarded proxy run: a fixed 48 x 48 / 8 km wall-bounded
/// lake with a per-member seeded perturbation, so every member's real
/// integration is deterministic and distinct.
swm::State guard_proxy_parent(std::uint64_t seed) {
  swm::GridSpec g;
  g.nx = g.ny = 48;
  g.dx = g.dy = 8e3;
  auto parent = swm::lake_at_rest(g, 500.0);
  util::Rng rng(seed);
  swm::perturb(parent, rng, 0.1);
  swm::apply_boundary(parent, swm::BoundaryKind::wall);
  return parent;
}

/// One 10 x 10-cell r=2 nest per configured sibling (capped at four), in
/// the corners of the proxy parent — the member's nest multiplicity at a
/// resolution cheap enough to integrate for real.
std::vector<nest::NestSpec> guard_proxy_nests(
    const core::NestedConfig& config) {
  static constexpr int kAnchors[4][2] = {{4, 4}, {30, 4}, {4, 30}, {30, 30}};
  std::vector<nest::NestSpec> specs;
  const std::size_t count = std::min<std::size_t>(config.siblings.size(), 4);
  for (std::size_t k = 0; k < count; ++k)
    specs.push_back(nest::NestSpec{"nest" + std::to_string(k),
                                   kAnchors[k][0], kAnchors[k][1], 10, 10,
                                   2});
  return specs;
}

/// Strip the trailing newline of report_to_json for embedding in the
/// merged per-member log.
std::string chomp(std::string text) {
  while (!text.empty() && text.back() == '\n') text.pop_back();
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Cli cli(argc, argv);
    const int cores = static_cast<int>(cli.get_int("cores", 2048));
    const auto machine = cli.get("machine", "bgp") == "bgl"
                             ? workload::bluegene_l(cores)
                             : workload::bluegene_p(cores);
    const int n_members = static_cast<int>(cli.get_int("members", 8));
    const int duplicates = static_cast<int>(cli.get_int("duplicates", 1));
    const int iterations = static_cast<int>(cli.get_int("iterations", 100));
    const int repeat = static_cast<int>(cli.get_int("repeat", 1));
    NESTWX_REQUIRE(n_members >= 1 && duplicates >= 1 && repeat >= 1,
                   "--members, --duplicates and --repeat must be positive");
    const auto allocator =
        parse_allocator(cli.get("allocator", "huffman"));
    const auto scheme = parse_scheme(cli.get("scheme", "multilevel"));

    campaign::CampaignOptions options;
    options.threads = static_cast<int>(cli.get_int("threads", 4));
    options.sharing = parse_sharing(cli.get("sharing", "space"));
    options.max_concurrent =
        static_cast<int>(cli.get_int("max-concurrent", 0));
    options.use_plan_cache = !cli.has("no-cache");
    options.run.with_io = cli.has("io");

    // Deterministic random ensemble, optionally duplicated to mimic the
    // heavy configuration reuse of real forecast campaigns.
    util::Rng rng(static_cast<std::uint64_t>(cli.get_int("seed", 42)));
    const auto configs = workload::random_configs(rng, n_members);
    std::vector<campaign::MemberSpec> members;
    for (int d = 0; d < duplicates; ++d) {
      for (int i = 0; i < n_members; ++i) {
        campaign::MemberSpec spec;
        spec.name = "member" + std::to_string(d * n_members + i);
        spec.config = configs[i];
        spec.iterations = iterations;
        spec.allocator = allocator;
        spec.scheme = scheme;
        members.push_back(std::move(spec));
      }
    }

    std::cout << "nestwx-campaign: " << machine.name << ", " << cores
              << " cores (" << machine.torus_x << "x" << machine.torus_y
              << "x" << machine.torus_z << " torus), "
              << members.size() << " members, sharing="
              << campaign::to_string(options.sharing) << ", threads="
              << options.threads << "\n";
    std::cout << "fitting perf model (profiling "
              << core::default_basis_domains().size()
              << " basis domains)...\n";
    auto scheduler = campaign::CampaignScheduler::with_profiled_model(machine);
    const auto cache_capacity =
        static_cast<std::size_t>(cli.get_int("cache-capacity", 0));
    if (cache_capacity > 0) scheduler.cache().set_capacity(cache_capacity);

    // --- Fault plan, when requested: explicit script or seeded random.
    fault::FaultOptions fault_options;
    bool with_faults = false;
    if (cli.has("faults")) {
      fault_options.plan = fault::FaultPlan::parse(cli.get("faults", ""));
      with_faults = true;
    } else if (cli.get_int("fault-count", 0) > 0) {
      double horizon = cli.get_double("fault-horizon", 0.0);
      if (horizon <= 0.0) {
        // No window given: measure the fault-free makespan and spread the
        // faults across it (the dry run also pre-warms the plan cache).
        horizon = scheduler.run(members, options).metrics.makespan;
        std::cout << "fault horizon from fault-free makespan: "
                  << util::Table::num(horizon, 1) << " s\n";
      }
      fault_options.plan = fault::FaultPlan::random(
          static_cast<std::uint64_t>(cli.get_int("fault-seed", 1)),
          static_cast<int>(cli.get_int("fault-count", 0)), horizon,
          machine.torus_x, machine.torus_y,
          cli.get_double("fault-link-fraction", 0.25));
      with_faults = true;
    }
    fault_options.checkpoint_every =
        static_cast<int>(cli.get_int("checkpoint-every", 10));
    fault_options.detect_seconds = cli.get_double("detect-seconds", 30.0);

    campaign::CampaignReport report;
    fault::FaultCampaignReport fault_report;
    if (with_faults) {
      const auto t0 = std::chrono::steady_clock::now();
      fault_report =
          fault::run_with_faults(scheduler, members, options, fault_options);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      report = fault_report.campaign;
      std::cout << "fault campaign: wall " << util::Table::num(wall, 2)
                << " s, " << fault_options.plan.events.size()
                << " scripted fault(s)\n";
    } else {
      for (int r = 0; r < repeat; ++r) {
        const auto t0 = std::chrono::steady_clock::now();
        report = scheduler.run(members, options);
        const double wall =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        std::cout << "campaign run " << (r + 1) << "/" << repeat << ": wall "
                  << util::Table::num(wall, 2) << " s, host throughput "
                  << util::Table::num(members.size() / wall, 2)
                  << " members/s, cache hit rate "
                  << util::Table::num(100.0 * report.metrics.cache_hit_rate,
                                      1)
                  << "%\n";
      }
    }
    std::cout << '\n';

    util::Table table({"member", "wave", "sub-torus", "ranks", "weight",
                       "cache", "s/iter", "run (s)", "done at (s)"});
    for (const auto& m : report.members) {
      table.add_row(
          {m.name, std::to_string(m.wave),
           std::to_string(m.rect.w) + "x" + std::to_string(m.rect.h) + "@(" +
               std::to_string(m.rect.x0) + "," + std::to_string(m.rect.y0) +
               ")",
           std::to_string(m.ranks), util::Table::num(m.weight, 3),
           m.cache_hit ? "hit" : "miss", util::Table::num(m.run.total, 3),
           util::Table::num(m.run_seconds, 1),
           util::Table::num(m.completion_seconds, 1)});
    }
    table.print(std::cout, "Member schedule (virtual time)");

    const auto& metrics = report.metrics;
    std::cout << "\nmakespan " << util::Table::num(metrics.makespan, 1)
              << " s over " << metrics.waves << " wave(s), throughput "
              << util::Table::num(metrics.throughput * 3600.0, 2)
              << " members/h, latency p50/p90/p99 "
              << util::Table::num(metrics.latency_p50, 1) << "/"
              << util::Table::num(metrics.latency_p90, 1) << "/"
              << util::Table::num(metrics.latency_p99, 1) << " s, cache "
              << metrics.cache_hits << " hit / " << metrics.cache_misses
              << " miss\n";
    // Cumulative plan-cache counters across every run of this scheduler.
    // `waits` (calls that actually blocked on an in-flight computation) is
    // scheduling-dependent, so it appears here on stdout only — the JSON
    // report carries the deterministic single_flight_joins instead.
    const campaign::PlanCacheStats cache_stats = scheduler.cache().stats();
    std::cout << "plan cache: " << cache_stats.hits << " hit / "
              << cache_stats.misses << " miss ("
              << cache_stats.waits << " single-flight wait(s)), "
              << cache_stats.evictions << " evicted, " << cache_stats.size
              << " resident"
              << (cache_stats.capacity > 0
                      ? " / capacity " + std::to_string(cache_stats.capacity)
                      : std::string())
              << ", " << report.metrics.single_flight_joins
              << " join(s)\n";
    // Host-execution facts, stdout-only like the `waits` counter above:
    // serialising thread counts would break the report's byte-identity
    // across --threads values.
    std::cout << "host threads: " << metrics.threads_used
              << ", per-member budget " << metrics.member_thread_budget
              << " thread(s)\n";

    if (with_faults) {
      if (!fault_report.recoveries.empty()) {
        util::Table recoveries({"member", "t (s)", "fault", "old rect",
                                "new rect", "resume", "lost (s)",
                                "recovery (s)"});
        for (const auto& rec : fault_report.recoveries) {
          recoveries.add_row(
              {rec.name, util::Table::num(rec.event.time, 1),
               fault::to_string(rec.event.kind) + "(" +
                   std::to_string(rec.event.x) + "," +
                   std::to_string(rec.event.y) + ")",
               rec.old_rect.to_string(), rec.new_rect.to_string(),
               std::to_string(rec.resume_iteration),
               util::Table::num(rec.lost_seconds, 1),
               util::Table::num(rec.recovery_seconds, 1)});
        }
        std::cout << '\n';
        recoveries.print(std::cout, "Recoveries (virtual time)");
      }
      const auto& fm = fault_report.metrics;
      std::cout << "\nfaults " << fm.faults_injected << " injected ("
                << fm.faults_idle << " idle, " << fm.faults_after_end
                << " after end), " << fm.recoveries << " recoveries over "
                << fm.members_affected << " member(s), "
                << fm.failed_nodes << " node(s) down, lost "
                << util::Table::num(fm.lost_seconds, 1) << " s, recovery "
                << util::Table::num(fm.recovery_seconds, 1) << " s, goodput "
                << util::Table::num(100.0 * fm.goodput, 1) << "%\n";
    }

    if (cli.has("guard")) {
      // Real guarded shallow-water proxy of every member: the numerical
      // resilience layer applied at campaign scale. A blow-up in one
      // member is contained (rollback, halved dt, quarantine) or, at
      // worst, fails that member alone.
      const int guard_steps =
          static_cast<int>(cli.get_int("guard-steps", 12));
      NESTWX_REQUIRE(guard_steps >= 1, "--guard-steps must be positive");
      const std::string incident_path = cli.get("incident-log", "");
      const std::string ckpt_stem =
          incident_path.substr(0, incident_path.find_last_of('.'));
      const double guard_dt = 40.0;  // ambient Courant ~0.7 on the proxy
      // Guarded proxies integrate one member at a time, so each member
      // gets the whole host budget for its row bands. Band counts never
      // affect bits, so the incident log stays byte-identical at any
      // --threads value.
      std::unique_ptr<util::ThreadPool> guard_pool;
      if (options.threads > 1)
        guard_pool = std::make_unique<util::ThreadPool>(options.threads);
      int guard_parent_bands = 1;
      util::Table guard_table({"member", "steps", "rollbacks", "halvings",
                               "escalations", "quarantined", "final dt",
                               "status"});
      std::ostringstream merged;
      merged << "{\n  \"schema\": \"nestwx-guard-campaign-v1\",\n"
             << "  \"members\": [";
      int failed = 0, quarantined = 0, rollbacks = 0;
      for (std::size_t m = 0; m < members.size(); ++m) {
        swm::ModelParams proxy_params;
        proxy_params.boundary = swm::BoundaryKind::wall;
        nest::NestedSimulation sim(guard_proxy_parent(m), proxy_params,
                                   guard_proxy_nests(members[m].config));
        if (guard_pool) {
          sim.set_thread_pool(guard_pool.get());
          nest::NestedSimulation::ThreadBudget budget;
          budget.threads = options.threads;
          sim.set_thread_budget(budget);
        }
        guard_parent_bands = sim.parent_band_count();
        if (cli.has("inject-blowup") && m == 0 && sim.sibling_count() > 0) {
          auto& child = sim.sibling(sim.sibling_count() - 1).state();
          for (int j = 8; j < 12; ++j)
            for (int i = 8; i < 12; ++i) child.h(i, j) += 2e4;
        }
        resilience::GuardPolicy guard_policy;
        if (!incident_path.empty() &&
            fault_options.checkpoint_every > 0) {
          guard_policy.checkpoint_every = fault_options.checkpoint_every;
          guard_policy.checkpoint_prefix =
              ckpt_stem + "_" + members[m].name;
        }
        std::string status = "completed";
        resilience::GuardReport guard_report;
        try {
          resilience::GuardedRunner runner(sim, guard_policy);
          guard_report = runner.run(guard_dt, guard_steps);
        } catch (const resilience::BlowupError& blowup) {
          status = "failed";
          failed += 1;
          (void)blowup;
        }
        quarantined += static_cast<int>(guard_report.quarantined.size());
        rollbacks += guard_report.rollbacks;
        guard_table.add_row(
            {members[m].name, std::to_string(guard_report.steps),
             std::to_string(guard_report.rollbacks),
             std::to_string(guard_report.dt_halvings),
             std::to_string(guard_report.escalations),
             std::to_string(guard_report.quarantined.size()),
             util::Table::num(guard_report.final_dt, 2), status});
        merged << (m == 0 ? "\n" : ",\n") << "    {\"name\": "
               << util::json_quote(members[m].name) << ", \"status\": "
               << util::json_quote(status) << ", \"report\": "
               << chomp(resilience::report_to_json(guard_report)) << "}";
      }
      merged << (members.empty() ? "" : "\n  ") << "]\n}\n";
      std::cout << '\n';
      guard_table.print(std::cout, "Guarded proxy runs (real SWM)");
      std::cout << "\nguard: " << (members.size() - failed) << "/"
                << members.size() << " members completed, " << rollbacks
                << " rollback(s), " << quarantined
                << " sibling(s) quarantined (host threads "
                << (guard_pool ? options.threads : 1) << ", parent bands "
                << guard_parent_bands << ")\n";
      if (!incident_path.empty()) {
        std::ofstream log(incident_path, std::ios::trunc);
        NESTWX_REQUIRE(log.good(),
                       "cannot open incident log: " + incident_path);
        log << merged.str();
        std::cout << "incident log written to " << incident_path << "\n";
      }
    }

    if (cli.has("json")) {
      const std::string path = cli.get("json", "nestwx_campaign.json");
      if (with_faults) {
        fault::write_report_json(path, fault_report, machine, options,
                                 fault_options);
      } else {
        campaign::write_report_json(path, report, machine, options);
      }
      std::cout << "report written to " << path << "\n";
    }
    return 0;
  } catch (const nestwx::util::Error& e) {
    std::cerr << "nestwx-campaign: " << e.what() << "\n";
    return 1;
  }
}

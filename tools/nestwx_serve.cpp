/// \file nestwx_serve.cpp
/// Campaign-service daemon: drain a file-backed spool of campaign
/// requests against one machine, with admission control, priority aging,
/// cross-request dedup and a sharded spill-to-disk plan cache.
///
///   # fill a spool with a deterministic mixed-priority workload
///   nestwx-serve --spool=/tmp/spool --generate=200 --gen-seed=7
///
///   # drain it: one pass claims, executes, and retires every request
///   nestwx-serve --spool=/tmp/spool --threads=8 --json=serve.json
///
/// Flags:
///   --spool=DIR              spool directory (required)
///   --machine=bgl|bgp        machine family                     [bgl]
///   --cores=N                partition size                     [64]
///   --threads=N              host worker threads per campaign   [4]
///   --queue-depth=N          admission bound                    [16]
///   --aging-rate=R           priority gain per virtual second   [0.01]
///   --shards=N               plan cache shards                  [4]
///   --shard-capacity=N       ready plans per shard (0 = all)    [0]
///   --spill-dir=DIR          plan spill directory ("" = none)
///   --json=PATH              write the merged drain report
///   --watch                  poll the spool until interrupted (one
///                            drain pass per non-empty poll)
///   --generate=N             write N generated requests into the spool
///                            and exit (no drain)
///   --gen-seed=S             request generator seed             [7]
///   --gen-gap=G              mean inter-arrival gap, virtual s  [50]
///
/// Chaos / recovery flags (see docs/architecture.md, "Chaos and
/// recovery policies"):
///   --chaos=SCRIPT           scripted fault plan, ';'-joined
///                            site:kind:subject[:max_hits[:delay]] rules
///   --chaos-seed=S           seed for rate-mode faults + retry jitter [0]
///   --chaos-rate=R           seeded fault probability per attempt    [0]
///   --retry=N                max attempts per boundary               [1]
///   --retry-base=B           base backoff, virtual seconds           [5]
///   --deadline=D             per-request virtual deadline (0 = none) [0]
///   --breaker-threshold=N    spill-breaker consecutive failures      [3]
///   --breaker-cooldown=C     spill-breaker cooldown, virtual s       [600]
///
/// The merged report and every per-request response in done/ are
/// deterministic: byte-identical for the same spool content at any
/// --threads value — with or without chaos (injected faults live in
/// virtual time, so a chaos drain is replayable exactly).

#include <chrono>
#include <fstream>
#include <iostream>
#include <thread>

#include "serve/request.hpp"
#include "serve/server.hpp"
#include "serve/spool.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/table.hpp"
#include "workload/machines.hpp"

namespace {

using namespace nestwx;

/// One claim-parse-execute-retire pass. Returns how many spool files it
/// consumed (including rejected ones).
std::size_t drain_once(serve::Spool& spool, serve::CampaignServer& server,
                       const std::string& json_path) {
  std::vector<serve::ClaimedRequest> claimed = spool.claim_pending();
  // Under chaos, a transient claim fault defers its file (left pending);
  // re-claiming advances its attempt number, so every deferred file
  // either claims or quarantines within the retry budget. Bound the
  // passes by that budget — the drain must never wedge on one bad file.
  const int max_passes =
      std::max(1, server.options().resilience.retry.max_attempts);
  for (int pass = 1; pass < max_passes && spool.pending() > 0; ++pass) {
    std::vector<serve::ClaimedRequest> more = spool.claim_pending();
    for (auto& file : more) claimed.push_back(std::move(file));
  }
  if (claimed.empty()) return 0;

  std::vector<serve::Request> requests;
  std::vector<const serve::ClaimedRequest*> sources;
  requests.reserve(claimed.size());
  std::size_t parse_rejected = 0;
  for (const auto& file : claimed) {
    try {
      requests.push_back(serve::parse_request(file.text, file.name));
      sources.push_back(&file);
    } catch (const serve::RequestParseError& e) {
      spool.reject(file, e.what());
      ++parse_rejected;
    }
  }
  std::cout << "claimed " << claimed.size() << " request file(s)";
  if (parse_rejected > 0)
    std::cout << ", rejected " << parse_rejected << " malformed";
  std::cout << "\n";
  if (requests.empty()) return claimed.size();

  const auto t0 = std::chrono::steady_clock::now();
  const serve::ServeReport report = server.execute(requests);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // Retire the spool files with their responses. Outcomes [0, n) are the
  // claimed requests in claim order; synthesised re-plans follow and have
  // no spool file of their own. A retire that fails terminally under
  // chaos leaves its file claimed — exactly the crash shape the next
  // daemon's recover() re-queues — and must not abort the other retires.
  std::size_t retire_failed = 0;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    try {
      spool.complete(*sources[i],
                     serve::outcome_to_json(report.outcomes[i]) + "\n");
    } catch (const serve::SpoolError& e) {
      ++retire_failed;
      std::cout << "retire failed (file stays claimed): " << e.what()
                << "\n";
    }
  }

  const serve::ServeMetrics& m = report.metrics;
  std::cout << "drain: " << m.submitted << " submitted, " << m.completed
            << " completed, " << m.coalesced << " coalesced, " << m.rejected
            << " rejected, " << m.evicted << " evicted, "
            << (m.amends_applied + m.amends_replanned + m.amends_invalid)
            << " amend(s)\n";
  std::cout << "virtual: makespan " << util::Table::num(m.drain_makespan, 1)
            << " s, utilization "
            << util::Table::num(100.0 * m.utilization, 1)
            << "%, wait p50/p99 " << util::Table::num(m.wait_p50, 1) << "/"
            << util::Table::num(m.wait_p99, 1) << " s, sustained "
            << util::Table::num(m.sustained_per_hour, 2)
            << " requests/h\n";
  const serve::ShardedCacheStats& c = report.cache;
  // `waits` is scheduling-dependent and deliberately appears only here on
  // stdout, never in the JSON report.
  std::cout << "plan cache: " << c.total.hits << " hit / " << c.total.misses
            << " miss (" << c.total.waits << " single-flight wait(s)), "
            << c.total.evictions << " evicted, " << c.spills << " spilled, "
            << c.reloads << " reloaded, " << c.spill_failures
            << " damaged spill(s), " << c.total.size << " resident\n";
  if (server.engine()) {
    std::cout << "resilience: " << m.faults_injected << " fault(s) injected, "
              << m.retries << " retried, " << m.timeouts << " timed out, "
              << m.quarantined << " quarantined, breaker "
              << m.breaker_trips << " trip(s)/" << m.breaker_closes
              << " close(s), " << c.spill_skips << " spill(s) skipped, "
              << c.cache_bypasses << " cache bypass(es)\n";
    const serve::SpoolChaosCounters& sc = spool.chaos_counters();
    std::cout << "spool chaos: " << sc.claim_deferrals << " claim(s) deferred, "
              << sc.quarantined << " quarantined at claim, " << sc.corrupted
              << " corrupted, " << sc.retire_retries << " retire retry(ies), "
              << retire_failed << " retire(s) failed\n";
  }
  std::cout << "wall: " << util::Table::num(wall, 2) << " s\n";

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    NESTWX_REQUIRE(out.good(), "cannot open " + json_path + " for writing");
    out << serve::report_to_json(report, server.machine(),
                                 server.options());
    NESTWX_REQUIRE(out.good(), "failed writing " + json_path);
    std::cout << "report written to " << json_path << "\n";
  }
  return claimed.size();
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const util::Cli cli(argc, argv);
    NESTWX_REQUIRE(cli.has("spool"), "--spool=DIR is required");
    const std::string spool_dir = cli.get("spool", "");

    if (cli.has("generate")) {
      const int count = static_cast<int>(cli.get_int("generate", 0));
      const auto requests = serve::generate_requests(
          static_cast<std::uint64_t>(cli.get_int("gen-seed", 7)), count,
          cli.get_double("gen-gap", 50.0));
      serve::Spool spool(spool_dir);  // creates the directory tree
      for (const auto& r : requests)
        serve::Spool::submit(spool_dir, r.id, serve::to_json(r) + "\n");
      std::cout << "generated " << requests.size() << " request(s) in "
                << spool_dir << "\n";
      return 0;
    }

    const int cores = static_cast<int>(cli.get_int("cores", 64));
    const auto machine = cli.get("machine", "bgl") == "bgp"
                             ? workload::bluegene_p(cores)
                             : workload::bluegene_l(cores);
    serve::ServeOptions options;
    options.threads = static_cast<int>(cli.get_int("threads", 4));
    options.queue_depth =
        static_cast<std::size_t>(cli.get_int("queue-depth", 16));
    options.aging_rate = cli.get_double("aging-rate", 0.01);
    options.cache.shards =
        static_cast<std::size_t>(cli.get_int("shards", 4));
    options.cache.shard_capacity =
        static_cast<std::size_t>(cli.get_int("shard-capacity", 0));
    options.cache.spill_dir = cli.get("spill-dir", "");
    chaos::RecoveryPolicies& rp = options.resilience;
    rp.plan = chaos::ChaosPlan::parse(cli.get("chaos", ""));
    rp.plan.seed = static_cast<std::uint64_t>(cli.get_int("chaos-seed", 0));
    rp.plan.rate = cli.get_double("chaos-rate", 0.0);
    rp.retry.max_attempts = static_cast<int>(cli.get_int("retry", 1));
    rp.retry.base_backoff = cli.get_double("retry-base", 5.0);
    rp.retry.seed = rp.plan.seed;
    rp.deadline = cli.get_double("deadline", 0.0);
    rp.breaker.failure_threshold =
        static_cast<int>(cli.get_int("breaker-threshold", 3));
    rp.breaker.cooldown = cli.get_double("breaker-cooldown", 600.0);

    serve::Spool spool(spool_dir);
    const std::size_t recovered = spool.recover();
    if (recovered > 0)
      std::cout << "recovered " << recovered
                << " claimed-but-unfinished request(s)\n";

    std::cout << "nestwx-serve: " << machine.name << ", " << cores
              << " cores, spool " << spool_dir << ", queue depth "
              << options.queue_depth << ", " << options.cache.shards
              << " cache shard(s)"
              << (options.cache.spill_dir.empty()
                      ? std::string()
                      : ", spill " + options.cache.spill_dir)
              << "\n";
    std::cout << "fitting perf model...\n";
    auto server = serve::CampaignServer::with_profiled_model(machine, options);
    if (auto engine = server.engine()) {
      // One engine across every boundary: server, cache and spool share
      // the same rule budgets and retry policy.
      spool.set_engine(engine);
      std::cout << "chaos engine active: policy fingerprint 0x" << std::hex
                << engine->policies().fingerprint() << std::dec << "\n";
    }

    const std::string json_path = cli.get("json", "");
    drain_once(spool, server, json_path);
    while (cli.has("watch")) {
      std::this_thread::sleep_for(std::chrono::milliseconds(200));
      if (spool.pending() > 0) drain_once(spool, server, json_path);
    }
    return 0;
  } catch (const nestwx::util::Error& e) {
    std::cerr << "nestwx-serve: " << e.what() << "\n";
    return 1;
  }
}
